"""The dynamic micro-batcher: coalesce requests into execution batches.

Requests arrive one at a time (each carrying one or a few samples); the
execution backends are fastest when fed large stacked batches.  The
:class:`DynamicBatcher` bridges the two with the classic dynamic-batching
policy used by inference servers: a batch is flushed as soon as it holds
``max_batch`` sample rows **or** its flush deadline has elapsed —
whichever happens first.  Pre-queued requests are drained greedily without
waiting, so a full queue always produces full batches and an idle service
adds at most one wait budget of batching latency to a lone request.

The flush deadline is SLO-aware: every request carries a priority class,
and each class maps to its own ``max_wait`` budget (``class_wait_s``).  A
batch's deadline is the *tightest* deadline of any request it holds — an
``interactive`` request stacked behind ``batch``-class requests pulls the
whole flush forward instead of inheriting the laxest budget.  Requests are
still batched strictly in arrival order (classes shape latency, never
ordering), which preserves the bit-identity contract of the analog
noise-stream.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
from typing import Dict, List, Mapping, Optional

import numpy as np

#: Queue sentinel that tells the batcher to stop after draining.
CLOSE = object()

#: Priority class assigned to requests that do not name one.
DEFAULT_PRIORITY = "standard"

_request_ids = itertools.count()


@dataclasses.dataclass
class Request:
    """One in-flight inference request.

    ``images`` always has a leading sample dimension (a single-image submit
    is stored as shape ``(1, ...)``); ``future`` resolves to the matching
    logits with the same leading dimension.  ``priority`` names the SLO
    class that decides the flush-deadline budget of any batch holding it.
    """

    images: np.ndarray
    future: "asyncio.Future[np.ndarray]"
    arrival: float
    priority: str = DEFAULT_PRIORITY
    request_id: int = dataclasses.field(default_factory=lambda: next(_request_ids))
    #: Live trace handle (:class:`repro.obs.trace.RequestTrace`) when this
    #: request was sampled for tracing; None otherwise.  The batcher never
    #: touches it — it rides along so the dispatch path can build the
    #: queue-wait / batch / dispatch span chain.
    trace: Optional[object] = None

    @property
    def rows(self) -> int:
        """Number of sample rows this request contributes to a batch."""
        return int(self.images.shape[0])


class DynamicBatcher:
    """Pull requests off a queue and group them into batches.

    Parameters
    ----------
    queue:
        The service request queue.  Items are :class:`Request` instances;
        the :data:`CLOSE` sentinel initiates shutdown (everything queued
        before it is still served).
    max_batch:
        Flush when the collected batch reaches this many sample rows.
        A single request larger than ``max_batch`` still ships, as a batch
        of its own.
    max_wait_s:
        Flush at most this long after a request *arrived*, even if the
        batch is not full.  ``0`` disables waiting: only what is already
        queued is coalesced.  This is the budget of every priority class
        not listed in ``class_wait_s``.
    class_wait_s:
        Optional per-priority-class wait budgets (seconds).  A batch
        flushes at the earliest ``arrival + budget(priority)`` over its
        requests, so tighter classes shorten the deadline for everyone
        sharing their batch.
    """

    def __init__(self, queue: "asyncio.Queue", max_batch: int = 64,
                 max_wait_s: float = 0.002,
                 class_wait_s: Optional[Mapping[str, float]] = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.queue = queue
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self.class_wait_s: Dict[str, float] = dict(class_wait_s or {})
        for name, wait in self.class_wait_s.items():
            if wait < 0:
                raise ValueError(f"priority class {name!r} wait must be >= 0")
        self._carry: Optional[Request] = None
        self._closed = False

    def wait_budget_s(self, priority: str) -> float:
        """The flush-wait budget of a priority class (seconds)."""
        return self.class_wait_s.get(priority, self.max_wait_s)

    def _deadline(self, batch: List[Request]) -> float:
        """Earliest per-request flush deadline across the batch."""
        return min(r.arrival + self.wait_budget_s(r.priority) for r in batch)

    @property
    def closed(self) -> bool:
        """True once the :data:`CLOSE` sentinel has been consumed."""
        return self._closed

    def _take(self, batch: List[Request], item) -> bool:
        """Add ``item`` to ``batch`` if it fits; return False to stop collecting."""
        if item is CLOSE:
            self._closed = True
            return False
        if batch and _batch_rows(batch) + item.rows > self.max_batch:
            # Would overflow: hold it for the next batch (FIFO preserved).
            self._carry = item
            return False
        batch.append(item)
        return _batch_rows(batch) < self.max_batch

    async def next_batch(self) -> Optional[List[Request]]:
        """Collect the next batch, or return None when closed and drained."""
        batch: List[Request] = []
        if self._carry is not None:
            batch.append(self._carry)
            self._carry = None
        # Wait for the first request (unless the carry already seeded one).
        if not batch:
            if self._closed:
                return None
            item = await self.queue.get()
            if not self._take(batch, item):
                return batch or None
        if _batch_rows(batch) >= self.max_batch:
            return batch
        # Greedily drain whatever is already queued — no reason to wait for
        # the timeout when back-pressure has built a full batch for us.
        while True:
            try:
                item = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if not self._take(batch, item):
                return batch
        # Timed phase: flush on max_batch or the deadline, whichever first.
        # The deadline is anchored to request *arrivals*, not to when the
        # batcher got around to them — a request carried over from an
        # overflowing batch has already waited and must not wait another
        # full budget.  It is recomputed whenever a request joins, because a
        # tighter-class arrival (e.g. ``interactive``) pulls the whole
        # batch's flush forward.
        loop = asyncio.get_running_loop()
        deadline = self._deadline(batch)
        while _batch_rows(batch) < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                item = await asyncio.wait_for(self.queue.get(), remaining)
            except asyncio.TimeoutError:
                break
            if not self._take(batch, item):
                break
            deadline = self._deadline(batch)
        return batch


def _batch_rows(batch: List[Request]) -> int:
    return sum(request.rows for request in batch)


def stack_requests(batch: List[Request]) -> np.ndarray:
    """Stack the requests of a batch into one contiguous input array."""
    return np.concatenate([request.images for request in batch], axis=0)


def scatter_results(batch: List[Request], logits: np.ndarray) -> None:
    """Slice batched logits back to the requests and resolve their futures.

    The worker must return exactly one logits row per batched sample row.
    Anything else would silently hand some clients *another client's*
    rows (or truncated ones) when sliced by offset, so a row-count
    mismatch raises before any future is resolved — the caller fails the
    whole batch with the descriptive error instead.
    """
    total = _batch_rows(batch)
    returned = int(logits.shape[0]) if logits.ndim >= 1 else -1
    if returned != total:
        raise ValueError(
            f"worker returned {returned} logits rows for a batch of {total} "
            f"request rows ({len(batch)} requests); refusing to scatter "
            "misaligned results across clients"
        )
    offset = 0
    for request in batch:
        if not request.future.done():
            request.future.set_result(logits[offset:offset + request.rows])
        offset += request.rows


def fail_requests(batch: List[Request], error: BaseException) -> None:
    """Propagate a worker failure to every request of the batch."""
    for request in batch:
        if not request.future.done():
            request.future.set_exception(error)
