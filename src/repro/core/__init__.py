"""AFPR-CIM core: the paper's primary contribution.

This package assembles the substrates (number formats, RRAM crossbar, analog
circuit blocks) into the architecture of the paper:

* :mod:`repro.core.config` — macro / ADC / DAC configuration dataclasses,
* :mod:`repro.core.fp_dac` — the input FP-DAC (Section III-C),
* :mod:`repro.core.fp_adc` — the dynamic-range adaptive FP-ADC
  (Section III-B), in both functional and transient flavours,
* :mod:`repro.core.macro` — a complete 576x256 AFPR-CIM macro,
* :mod:`repro.core.mapping` — conv/FC layer mapping, tiling and the
  inter-core routing adder (Section III-D),
* :mod:`repro.core.accelerator` — a multi-macro accelerator with latency /
  energy / throughput accounting.
"""

from repro.core.config import (
    ADCConfig,
    DACConfig,
    MacroConfig,
    e2m5_macro_config,
    e3m4_macro_config,
    macro_config_for_format,
    hardware_activation_format,
)
from repro.core.fp_dac import FPDAC
from repro.core.fp_adc import FPADC, FPADCTransient, ADCReadout, AdaptiveRangeController
from repro.core.macro import AFPRMacro, MacroStats
from repro.core.mapping import (
    MappedLayer,
    RoutingAdder,
    TileSpec,
    tile_weight_matrix,
    im2col,
    col2im_output,
    conv_weights_to_matrix,
    conv_output_size,
)
from repro.core.accelerator import AFPRAccelerator, PerformanceReport

__all__ = [
    "ADCConfig",
    "DACConfig",
    "MacroConfig",
    "e2m5_macro_config",
    "e3m4_macro_config",
    "macro_config_for_format",
    "hardware_activation_format",
    "FPDAC",
    "FPADC",
    "FPADCTransient",
    "ADCReadout",
    "AdaptiveRangeController",
    "AFPRMacro",
    "MacroStats",
    "MappedLayer",
    "RoutingAdder",
    "TileSpec",
    "tile_weight_matrix",
    "im2col",
    "col2im_output",
    "conv_weights_to_matrix",
    "conv_output_size",
    "AFPRAccelerator",
    "PerformanceReport",
]
