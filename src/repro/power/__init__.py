"""Power / energy / performance models of the AFPR-CIM macro.

The paper's evaluation (Fig. 6 and Table I) rests on a module-level power
breakdown of the macro — ADC, DAC + array, and digital — for the three
studied formats (INT8, FP8 E3M4, FP8 E2M5), and on the derived throughput
(GOPS) and energy-efficiency (TOPS/W) figures.  This package provides those
models:

* :mod:`repro.power.components` — per-module energy models (adaptive FP-ADC,
  conventional INT single-slope ADC, FP-DAC / INT-DAC row drivers, RRAM
  array, digital interface) with documented calibration constants,
* :mod:`repro.power.macro_power` — the whole-macro breakdown for any
  activation format plus the conventional INT8 reference design,
* :mod:`repro.power.efficiency` — throughput / energy-efficiency arithmetic
  and the Table-I style specification record.

The absolute numbers are calibrated so the E2M5 macro reproduces the paper's
headline 19.89 TFLOPS/W at 1474.56 GFLOPS; the INT8 / E3M4 relative factors
then follow from the structural differences (conversion time, capacitor
load, counter cycles), which is the claim the reproduction tracks.
"""

from repro.power.components import (
    PowerCalibration,
    ConverterSpec,
    adc_energy,
    dac_energy,
    array_energy,
    digital_energy,
)
from repro.power.macro_power import (
    PowerBreakdown,
    MacroPowerModel,
    Int8ReferencePowerModel,
    format_power_comparison,
)
from repro.power.efficiency import (
    tops_per_watt,
    gops,
    energy_per_op,
    energy_per_conversion,
    energy_per_request,
    MacroSpecification,
    afpr_specification,
)

__all__ = [
    "PowerCalibration",
    "ConverterSpec",
    "adc_energy",
    "dac_energy",
    "array_energy",
    "digital_energy",
    "PowerBreakdown",
    "MacroPowerModel",
    "Int8ReferencePowerModel",
    "format_power_comparison",
    "tops_per_watt",
    "gops",
    "energy_per_op",
    "energy_per_conversion",
    "energy_per_request",
    "MacroSpecification",
    "afpr_specification",
]
