"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or one of
the DESIGN.md ablations) and checks the reproduced numbers against the
paper's claims while pytest-benchmark records the runtime.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to also see the rendered ASCII tables for each experiment.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-fig6c",
        action="store_true",
        default=False,
        help="run the Fig. 6(c) accuracy benchmark at full size (slower)",
    )


@pytest.fixture
def full_fig6c(request):
    """Whether the accuracy benchmark should use the full-size workload."""
    return request.config.getoption("--full-fig6c")
