"""Deterministic fault injection for the serving stack.

The injector is a seeded, replayable chaos layer: named injection sites are
threaded through the serving hot paths (worker forward entry, shm slot
writes, pipeline stage handoffs, plan-cache loads, the respawn path) and a
:class:`FaultSpec` describes which sites misbehave, how, and when.  Every
decision is drawn from a per-site ``random.Random`` seeded from
``(spec.seed, site)``, so a chaos run is exactly reproducible from the
``(seed, fault_spec)`` pair — the CACE-style verification discipline of
sweeping faults deterministically instead of SIGKILL-ing ad hoc.

With no injector installed every site costs one module-global ``None``
check (or nothing at all where call sites gate on configuration), keeping
the disabled overhead inside the obs hook budget.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultRule,
    FaultSpec,
    InjectedFaultError,
    SITES,
    fire,
    get_installed,
    install,
    uninstall,
)

__all__ = [
    "FaultInjector",
    "FaultRule",
    "FaultSpec",
    "InjectedFaultError",
    "SITES",
    "fire",
    "get_installed",
    "install",
    "uninstall",
]
