"""Tests for the experiment runners that regenerate the paper's figures/tables."""

import numpy as np
import pytest

from repro.analysis import (
    render_series,
    render_table,
    run_adaptive_vs_fixed_ablation,
    run_cap_ladder_ablation,
    run_fig5a,
    run_fig5b,
    run_fig6_power,
    run_format_ablation,
    run_sparsity_ablation,
    run_table1,
)
from repro.analysis.fig6c import quick_fig6c
from repro.analysis.report import format_quantity


class TestReportHelpers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [("1", "2"), ("333", "4")], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_row_length_check(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [("1",)])

    def test_render_series_downsamples(self):
        text = render_series("s", list(range(100)), list(range(100)), max_points=5)
        assert text.count("->") <= 8

    def test_format_quantity(self):
        assert format_quantity(None) == "-"
        assert format_quantity(0.2, "us") == "0.2 us"


class TestFig5a:
    def test_matches_paper(self):
        result = run_fig5a()
        assert result.matches_paper
        assert result.exponent_code == 0b10
        assert result.mantissa_code == 0b01001
        assert result.digital_output() == "1001001"
        assert result.value == pytest.approx(5.125)
        assert result.held_voltage == pytest.approx(1.28125, abs=0.02)
        assert len(result.adaptation_times_ns) == 2

    def test_functional_model_agrees(self):
        result = run_fig5a()
        assert result.functional_exponent == result.exponent_code
        assert abs(result.functional_mantissa - result.mantissa_code) <= 1

    def test_render_contains_paper_values(self):
        text = run_fig5a().render()
        assert "1001001" in text
        assert "5.38" in text


class TestFig5b:
    def test_slope_doubling_between_exponent_groups(self):
        result = run_fig5b()
        for ratios in result.slope_ratios.values():
            np.testing.assert_allclose(ratios, 2.0, rtol=0.01)

    def test_linearity_error_small(self):
        assert run_fig5b().max_linearity_error < 0.01

    def test_currents_scale_with_conductance(self):
        result = run_fig5b()
        top = {g: float(np.max(i)) for g, i in result.currents.items()}
        assert top[20e-6] > top[18e-6] > top[15e-6] > top[12e-6]

    def test_render(self):
        text = run_fig5b().render()
        assert "20 uS" in text and "12 uS" in text


class TestFig6Power:
    def test_reductions_close_to_paper(self):
        result = run_fig6_power()
        assert result.total_energy_reduction == pytest.approx(0.465, abs=0.03)
        assert result.adc_energy_reduction == pytest.approx(0.564, abs=0.05)
        assert result.int_conversion_time_factor == pytest.approx(2.5)

    def test_ordering_of_totals(self):
        result = run_fig6_power()
        assert result.e2m5.total_energy < result.e3m4.total_energy
        assert result.e2m5.total_energy < result.int8.total_energy

    def test_render(self):
        text = run_fig6_power().render()
        assert "ADC reduction" in text and "46.5%" in text


class TestTable1:
    def test_backend_throughput_through_registry(self):
        result = run_table1(include_backend_throughput=True)
        assert set(result.backend_throughput) >= {"ideal", "fake_quant",
                                                  "fast_noise", "analog"}
        assert all(v > 0 for v in result.backend_throughput.values())
        assert "execution backend" in result.render()
        # Default runs skip the measurement and render without the section.
        assert run_table1().backend_throughput is None

    def test_headline_ratios_reproduce(self):
        result = run_table1()
        for key, claimed in result.claimed_ratios.items():
            assert result.measured_ratios[key] == pytest.approx(claimed, rel=0.02), key

    def test_modelled_ratios_same_ballpark(self):
        result = run_table1()
        for key, claimed in result.claimed_ratios.items():
            assert result.modelled_ratios[key] == pytest.approx(claimed, rel=0.25), key

    def test_e2m5_row_matches_paper_numbers(self):
        result = run_table1()
        assert result.e2m5.throughput_gops == pytest.approx(1474.56)
        assert result.e2m5.energy_efficiency_tops_per_watt == pytest.approx(19.89, rel=0.02)
        assert result.e2m5.latency_us == pytest.approx(0.2)

    def test_render(self):
        text = run_table1().render()
        assert "Nature'22" in text
        assert "4.135x" in text


@pytest.mark.slow
class TestFig6c:
    def test_quick_run_structure_and_ordering(self):
        result = quick_fig6c()
        assert set(result.results) == {"ResNet-lite", "MobileNet-lite"}
        for network, formats in result.results.items():
            assert set(formats) == {"INT8", "FP8-E3M4", "FP8-E2M5"}
            for fmt_result in formats.values():
                assert 0.0 <= fmt_result.accuracy <= 1.0
                assert fmt_result.fp32_accuracy >= 0.3
        # The paper's qualitative claim: E2M5 is not worse than the others.
        assert result.ordering_holds("ResNet-lite")

    def test_render(self):
        text = quick_fig6c().render()
        assert "ResNet-lite" in text and "FP8-E2M5" in text


class TestAblations:
    def test_cap_ladder_paper_is_best(self):
        result = run_cap_ladder_ablation()
        paper_key = next(name for name in result.ladder_names if "paper" in name)
        assert result.is_binary[paper_key]
        np.testing.assert_allclose(result.post_share_voltages[paper_key], 1.0, atol=1e-9)
        for name in result.ladder_names:
            if name == paper_key:
                assert result.max_transfer_error[name] < 0.02
            else:
                assert result.max_transfer_error[name] > result.max_transfer_error[paper_key]

    def test_adaptive_beats_fixed_for_small_signals(self):
        result = run_adaptive_vs_fixed_ablation(num_points=150)
        assert result.fp_small_signal_error < result.int_small_signal_error
        assert result.conversion_time_ratio == pytest.approx(2.5)

    def test_sparsity_monotonic(self):
        result = run_sparsity_ablation()
        assert np.all(np.diff(result.total_power_mw) < 0)
        assert np.all(np.diff(result.efficiency_tops_per_watt) > 0)

    def test_format_ablation_selects_e2m5(self):
        result = run_format_ablation(sample_size=5000)
        sqnr = result.gaussian_sqnr_db
        # E2M5 beats the other FP8 splits on Gaussian data and beats INT8 too
        # (the paper's argument for choosing it).
        assert sqnr["FP8-E2M5"] > sqnr["FP8-E3M4"]
        assert sqnr["FP8-E2M5"] > sqnr["FP8-E4M3"]
        assert result.efficiency_tops_per_watt["FP8-E2M5"] > \
            result.efficiency_tops_per_watt["INT8"]

    def test_ablation_renders(self):
        assert "paper" in run_cap_ladder_ablation().render()
        assert "Sparsity" in run_sparsity_ablation().render()
        assert "INT8" in run_format_ablation(sample_size=2000).render()
        assert "adaptive" in run_adaptive_vs_fixed_ablation(num_points=50).render().lower()
