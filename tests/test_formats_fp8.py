"""Unit tests for the low-bit floating-point formats (repro.formats.fp8)."""

import numpy as np
import pytest

from repro.formats import E2M5, E3M4, E4M3, FP16, BF16, FloatFormat, decompose, fp8_value_table


class TestFormatProperties:
    def test_e2m5_bit_layout(self):
        assert E2M5.exponent_bits == 2
        assert E2M5.mantissa_bits == 5
        assert E2M5.total_bits == 8

    def test_e3m4_bit_layout(self):
        assert E3M4.exponent_bits == 3
        assert E3M4.mantissa_bits == 4
        assert E3M4.total_bits == 8

    def test_default_bias_is_ieee_style(self):
        assert E2M5.bias == 1
        assert E3M4.bias == 3
        assert FP16.bias == 15
        assert BF16.bias == 127

    def test_e2m5_max_value(self):
        # (2 - 1/32) * 2^(3-1) = 1.96875 * 4
        assert E2M5.max_value == pytest.approx(7.875)

    def test_e3m4_max_value(self):
        # (2 - 1/16) * 2^(7-3) = 1.9375 * 16
        assert E3M4.max_value == pytest.approx(31.0)

    def test_e3m4_has_larger_dynamic_range_than_e2m5(self):
        assert E3M4.dynamic_range_db() > E2M5.dynamic_range_db()

    def test_min_subnormal_below_min_normal(self):
        assert E2M5.min_subnormal < E2M5.min_normal
        assert E2M5.min_subnormal == pytest.approx(E2M5.min_normal / 32)

    def test_invalid_bit_widths_rejected(self):
        with pytest.raises(ValueError):
            FloatFormat(exponent_bits=0, mantissa_bits=5)
        with pytest.raises(ValueError):
            FloatFormat(exponent_bits=2, mantissa_bits=0)

    def test_code_count(self):
        assert E2M5.code_count == 128
        assert E3M4.code_count == 128

    def test_custom_bias(self):
        fmt = FloatFormat(exponent_bits=2, mantissa_bits=5, bias=0)
        assert fmt.max_value == pytest.approx(1.96875 * 8)


class TestQuantize:
    def test_representable_values_are_fixed_points(self):
        values = E2M5.all_values()
        np.testing.assert_allclose(E2M5.quantize(values), values)

    def test_quantize_is_idempotent(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000) * 3
        once = E2M5.quantize(x)
        twice = E2M5.quantize(once)
        np.testing.assert_allclose(once, twice)

    def test_saturation_to_max(self):
        assert E2M5.quantize(100.0) == pytest.approx(E2M5.max_value)
        assert E2M5.quantize(-100.0) == pytest.approx(-E2M5.max_value)

    def test_zero_maps_to_zero(self):
        assert E2M5.quantize(0.0) == 0.0

    def test_sign_symmetry(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(500)
        np.testing.assert_allclose(E2M5.quantize(-x), -E2M5.quantize(x))

    def test_error_bounded_by_half_ulp(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-E2M5.max_value, E2M5.max_value, 2000)
        q = E2M5.quantize(x)
        step = E2M5.quantization_step(x)
        assert np.all(np.abs(q - x) <= step / 2 + 1e-12)

    def test_subnormal_flush_when_disabled(self):
        fmt = FloatFormat(exponent_bits=2, mantissa_bits=5, subnormals=False, bias=0)
        # Values below the smallest normal (1.0 for bias 0) flush to zero.
        assert fmt.quantize(0.4) == 0.0
        assert fmt.quantize(1.0) == pytest.approx(1.0)

    def test_subnormal_preserved_when_enabled(self):
        small = E2M5.min_subnormal * 3
        assert E2M5.quantize(small) != 0.0

    def test_quantize_non_finite_saturates(self):
        assert E2M5.quantize(np.inf) == pytest.approx(E2M5.max_value)


class TestEncodeDecode:
    def test_roundtrip_all_codes(self):
        codes = np.arange(E2M5.code_count)
        values = E2M5.decode(codes)
        recovered = E2M5.encode(values)
        np.testing.assert_array_equal(recovered, codes)

    def test_roundtrip_all_codes_e3m4(self):
        codes = np.arange(E3M4.code_count)
        values = E3M4.decode(codes)
        np.testing.assert_array_equal(E3M4.encode(values), codes)

    def test_decode_zero_code(self):
        assert E2M5.decode(0) == 0.0

    def test_negative_values_set_sign_bit(self):
        code = E2M5.encode(-1.5)
        sign, _, _ = E2M5.fields(code)
        assert sign == 1

    def test_fields_compose_roundtrip(self):
        codes = np.arange(E2M5.code_count)
        sign, exp, man = E2M5.fields(codes)
        np.testing.assert_array_equal(E2M5.compose(sign, exp, man), codes)

    def test_compose_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            E2M5.compose(0, 4, 0)
        with pytest.raises(ValueError):
            E2M5.compose(0, 0, 32)

    def test_decompose_matches_encode_fields(self):
        x = np.array([0.5, 1.25, 3.0, 7.875])
        s1, e1, m1 = decompose(x, E2M5)
        s2, e2, m2 = E2M5.fields(E2M5.encode(x))
        np.testing.assert_array_equal(e1, e2)
        np.testing.assert_array_equal(m1, m2)
        np.testing.assert_array_equal(s1, s2)

    def test_value_table_shape(self):
        table = fp8_value_table(E2M5)
        assert table.shape == (128, 2)
        # Table values must decode the same codes.
        np.testing.assert_allclose(table[:, 1], E2M5.decode(table[:, 0].astype(int)))

    def test_all_values_sorted_and_unique(self):
        values = E2M5.all_values()
        assert np.all(np.diff(values) > 0)

    def test_nonuniform_grid_spacing_doubles_per_binade(self):
        values = E2M5.all_values()
        # Spacing in [1, 2) is 1/32, in [2, 4) is 1/16.
        low = values[(values >= 1.0) & (values < 2.0)]
        high = values[(values >= 2.0) & (values < 4.0)]
        assert np.diff(low)[0] == pytest.approx(1 / 32)
        assert np.diff(high)[0] == pytest.approx(1 / 16)


class TestE2M5VersusE3M4:
    """The trade-off the paper studies: mantissa precision vs dynamic range."""

    def test_e2m5_finer_resolution_near_one(self):
        assert E2M5.quantization_step(1.0) < E3M4.quantization_step(1.0)

    def test_e3m4_represents_larger_values(self):
        assert E3M4.max_value > E2M5.max_value

    def test_e2m5_better_sqnr_on_gaussian(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(20000)
        scale_e2m5 = np.max(np.abs(x)) / E2M5.max_value
        scale_e3m4 = np.max(np.abs(x)) / E3M4.max_value
        err_e2m5 = np.mean((E2M5.quantize(x / scale_e2m5) * scale_e2m5 - x) ** 2)
        err_e3m4 = np.mean((E3M4.quantize(x / scale_e3m4) * scale_e3m4 - x) ** 2)
        assert err_e2m5 < err_e3m4

    def test_e4m3_worse_than_e2m5_on_gaussian(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(20000)
        scale_e2m5 = np.max(np.abs(x)) / E2M5.max_value
        scale_e4m3 = np.max(np.abs(x)) / E4M3.max_value
        err_e2m5 = np.mean((E2M5.quantize(x / scale_e2m5) * scale_e2m5 - x) ** 2)
        err_e4m3 = np.mean((E4M3.quantize(x / scale_e4m3) * scale_e4m3 - x) ** 2)
        assert err_e2m5 < err_e4m3
