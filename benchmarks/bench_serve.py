"""Benchmark: dynamic batching, the shared-memory process transport and the
serving determinism contract.

Three acceptance bars:

* at equal offered load (every request pre-queued, so both configurations
  face the same instantaneous backlog), dynamic batching with
  ``max_batch=64`` sustains at least 3x the steady-state throughput of a
  batch-size-1 service, in both worker modes;
* the shared-memory ring transport serves process-worker batches at least
  1.3x faster than the legacy pickle-per-batch transport on a
  payload-heavy workload (the regime the transport targets: the batch
  bytes, not the model, dominate the per-batch cost — think image serving
  with a compact head), with bit-identical logits across both transports;
* when the coalesced batch equals the direct batch, the served logits are
  bit-identical to ``run_model`` on every backend in the registry.

Each timing is the best of several runs measured by the service's own
clock (or a warmed steady-state loop for the transport A/B, interleaved so
runner load drift hits both transports equally), so a loaded CI runner
cannot flake the comparison.  ``BENCH_serve.json`` records everything; the
CI regression gate diffs the speedup ratios against the committed
baseline.

Run with::

    pytest benchmarks/bench_serve.py --benchmark-only -s
"""

import asyncio
import time

import numpy as np
import pytest

from _timing import best_metric, smoke_mode, write_bench_json
from repro.exec import ExecutionContext, available_backends, run_model
from repro.nn import DatasetConfig, SGD, Sequential, SyntheticImageDataset, Trainer
from repro.nn.layers import Flatten, Linear, ReLU
from repro.rram.device import RRAMStatistics
from repro.core import MacroConfig
from repro.serve import InferenceService, ServeConfig, serve_requests

REQUESTS = 64 if smoke_mode() else 256
ROUNDS = 2 if smoke_mode() else 3

#: Results stashed across the module's tests; the last test writes the
#: consolidated ``BENCH_serve.json`` trajectory from whatever ran.
_RESULTS = {}


@pytest.fixture(scope="module")
def workload():
    """A trained MLP classifier plus a request stream for the serving benchmarks.

    Matmul-heavy on purpose: dense layers run one BLAS gemm per batch, so a
    64-row batch costs far less than 64 single-row forwards — the regime
    dynamic batching exists for (the conv path's im2col cost scales almost
    linearly with batch size and would understate the effect).
    """
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=8, image_size=12,
                                                  noise_sigma=0.3, seed=17))
    x_train, y_train, x_test, _ = dataset.train_test_split(256, 64)
    model = Sequential(
        Flatten(),
        Linear(432, 1024, rng=np.random.default_rng(0)),
        ReLU(),
        Linear(1024, 256, rng=np.random.default_rng(1)),
        ReLU(),
        Linear(256, 8, rng=np.random.default_rng(2)),
    )
    Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32).fit(
        x_train, y_train, epochs=2
    )
    requests = np.tile(x_test, (REQUESTS // len(x_test), 1, 1, 1))
    return model, x_train, requests


def _best_serving_time(model, images, config, rounds=ROUNDS):
    """Best-of-N first-arrival-to-last-completion time over several runs.

    The time is the service's own clock (first arrival to last completion),
    minimised by the shared :func:`_timing.best_metric` helper.
    """
    def serve_once():
        _, snapshot = serve_requests(model, images, config)
        # submit_many enqueues max_batch-row slices, so the request count is
        # ceil(samples / max_batch); samples and zero drops pin completeness.
        assert snapshot.samples == len(images) and snapshot.dropped == 0
        return snapshot

    best, _ = best_metric(serve_once, lambda s: s.wall_time_s, rounds=rounds)
    return best


@pytest.mark.benchmark(group="serve")
def test_dynamic_batching_beats_batch1_by_3x(benchmark, workload):
    """Dynamic batching (max_batch=64) >= 3x batch-size-1 throughput at
    equal offered load, in both worker modes; writes ``BENCH_serve.json``."""
    model, _, requests = workload
    results = {}

    def measure_thread_mode():
        batched = _best_serving_time(model, requests,
                                     ServeConfig(max_batch=64, max_wait_ms=2.0))
        batch1 = _best_serving_time(model, requests,
                                    ServeConfig(max_batch=1, max_wait_ms=2.0))
        return batched, batch1

    batched_time, batch1_time = benchmark.pedantic(
        measure_thread_mode, rounds=1, iterations=1)
    results["thread"] = (batched_time, batch1_time)

    # The same offered load on a process-pool worker: per-batch IPC taxes
    # batch-size-1 serving hardest, so the dynamic-batching edge must hold
    # there too (the bench_serve gate for workers="process").
    results["process"] = (
        _best_serving_time(model, requests,
                           ServeConfig(max_batch=64, max_wait_ms=2.0,
                                       workers="process"), rounds=2),
        _best_serving_time(model, requests,
                           ServeConfig(max_batch=1, max_wait_ms=2.0,
                                       workers="process"), rounds=1),
    )

    print()
    modes = {}
    for mode, (batched, batch1) in results.items():
        batched_rps = REQUESTS / batched
        batch1_rps = REQUESTS / batch1
        speedup = batched_rps / batch1_rps
        modes[mode] = {
            "batched_s": batched, "batch1_s": batch1,
            "batched_rps": batched_rps, "speedup": speedup,
        }
        print(f"[{mode:7s}] dynamic batching {batched_rps:.0f} samples/s, "
              f"batch-1 {batch1_rps:.0f} samples/s, speedup {speedup:.1f}x")
        assert speedup >= 3.0, (
            f"dynamic batching only {speedup:.2f}x faster in {mode} mode")
    _RESULTS.update({"requests": REQUESTS, "modes": modes})


@pytest.fixture(scope="module")
def transport_workload():
    """A payload-heavy serving workload for the transport comparison.

    Large input images with a compact dense head: each 64-row batch moves
    megabytes of pixels for a sub-millisecond forward, which is the regime
    where the per-batch transport (pickle serialisation and pipe copies vs
    one shared-memory write) dominates — image serving with a lean model.
    Smoke mode shrinks the images, keeping the same byte-vs-compute shape.
    """
    image_size = 48 if smoke_mode() else 64
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=8,
                                                  image_size=image_size,
                                                  noise_sigma=0.3, seed=23))
    x_train, y_train, x_test, _ = dataset.train_test_split(128, 64)
    features = 3 * image_size * image_size
    model = Sequential(
        Flatten(),
        Linear(features, 64, rng=np.random.default_rng(0)),
        ReLU(),
        Linear(64, 8, rng=np.random.default_rng(1)),
    )
    Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32).fit(
        x_train, y_train, epochs=1
    )
    return model, np.ascontiguousarray(x_test)


def _steady_state_batch_time(service_batches):
    """Per-batch wall time of warmed, interleaved transport loops.

    ``service_batches`` maps label -> (service, batch).  Both services are
    warmed (which also builds the shared-memory rings), then timed batches
    alternate between them so machine load drift cannot bias one side.
    Returns label -> best observed per-batch seconds.
    """
    timed = 16 if smoke_mode() else 32

    async def run():
        best = {label: float("inf") for label in service_batches}
        started = []
        try:
            for label, (service, batch) in service_batches.items():
                await service.start()
                started.append(service)
                for _ in range(3):
                    await service.submit(batch)
                if label == "shm":
                    # Guard the A/B's premise: if /dev/shm were unavailable
                    # the worker silently falls back to pickling and the
                    # comparison would measure pickle vs pickle.
                    assert service.shm_segment_names(), (
                        "shared-memory transport did not engage")
            for _ in range(timed):
                for label, (service, batch) in service_batches.items():
                    start = time.perf_counter()
                    await service.submit(batch)
                    best[label] = min(best[label], time.perf_counter() - start)
        finally:
            # Always stop what started: a failed submit must not leak
            # worker processes or their shared-memory segments into the
            # rest of the pytest session.
            for service in started:
                await service.stop()
        return best

    return asyncio.run(run())


@pytest.mark.benchmark(group="serve")
def test_shm_transport_beats_pickle_1p3x_bit_identical(benchmark,
                                                       transport_workload):
    """The shared-memory ring transport serves process-worker batches >=
    1.3x faster than the pickle-per-batch transport on the payload-heavy
    workload, with bit-identical served logits on both transports, and
    writes the consolidated ``BENCH_serve.json`` trajectory."""
    model, x_test = transport_workload
    images = x_test[:32]

    def check_identity():
        direct = run_model(model, images, backend="ideal",
                           batch_size=len(images))
        outcomes = {}
        for transport in ("shm", "pickle"):
            served, _ = serve_requests(
                model, images,
                ServeConfig(max_batch=len(images), workers="process",
                            transport=transport))
            outcomes[transport] = np.array_equal(served, direct.logits)
        return outcomes

    outcomes = benchmark.pedantic(check_identity, rounds=1, iterations=1)
    print("\nServed-vs-direct bit identity per transport:")
    for transport, identical in sorted(outcomes.items()):
        print(f"  {transport:7s} {'bit-identical' if identical else 'MISMATCH'}")
    assert all(outcomes.values()), outcomes

    services = {
        transport: (InferenceService(model, ServeConfig(
            max_batch=len(x_test), workers="process", transport=transport)),
            x_test)
        for transport in ("shm", "pickle")
    }
    best = _steady_state_batch_time(services)
    speedup = best["pickle"] / best["shm"]
    batch_mb = x_test.nbytes / 1e6
    print(f"Process transport ({batch_mb:.1f} MB/batch): "
          f"shm {best['shm'] * 1e3:.2f} ms/batch, "
          f"pickle {best['pickle'] * 1e3:.2f} ms/batch, "
          f"speedup {speedup:.2f}x")

    path = write_bench_json("serve", {
        "transport_batch_mb": batch_mb,
        "transport_shm_s": best["shm"],
        "transport_pickle_s": best["pickle"],
        "transport_speedup": speedup,
        "transport_bit_identical": outcomes,
        **_RESULTS,
    })
    print(f"Trajectory written to {path}")

    assert speedup >= 1.3, f"shared-memory transport only {speedup:.2f}x faster"


@pytest.mark.benchmark(group="serve")
def test_served_logits_bit_identical_on_every_backend(benchmark, workload):
    """Exact-batch serving reproduces direct ``run_model`` bit for bit on
    every registered backend."""
    model, x_train, requests = workload
    images = requests[:32]
    quiet = RRAMStatistics(programming_sigma=0.0, read_noise_sigma=0.0,
                           drift_coefficient=0.0,
                           stuck_at_lrs_probability=0.0,
                           stuck_at_hrs_probability=0.0)
    context = ExecutionContext(calibration=x_train[:16],
                               macro_config=MacroConfig(
                                   device_statistics=quiet,
                                   read_noise_enabled=False),
                               max_mapped_layers=1, seed=0)

    def check_all():
        outcomes = {}
        for backend in available_backends():
            direct = run_model(model, images, backend=backend,
                               context=context, batch_size=len(images))
            for mode in ("thread", "process"):
                served, _ = serve_requests(
                    model, images,
                    ServeConfig(backend=backend, max_batch=len(images),
                                context=context, workers=mode))
                outcomes[f"{backend}/{mode}"] = np.array_equal(served, direct.logits)
        return outcomes

    outcomes = benchmark.pedantic(check_all, rounds=1, iterations=1)
    print("\nServed-vs-direct bit identity:")
    for key, identical in sorted(outcomes.items()):
        print(f"  {key:22s} {'bit-identical' if identical else 'MISMATCH'}")
    assert all(outcomes.values()), outcomes
