"""Conventional INT single-slope integrating ADC (the Fig. 6 reference).

Paper Section IV-B: "In order to show the performance of the dynamic range
adaptive idea proposed in this paper more fairly, we designed a conventional
INT single-slope integral ADC in the same process."  That reference design
integrates the column current onto a *fixed* capacitor for the same 100 ns
and then runs an 8-bit counter over the full 2 V range, which takes 4x the
counting time of the 5-bit mantissa conversion — a 500 ns total conversion.

This module provides the *functional* converter (code behaviour, for
accuracy comparisons against the FP-ADC); its energy model is
:class:`repro.power.macro_power.Int8ReferencePowerModel`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np


@dataclasses.dataclass(frozen=True)
class IntADCConfig:
    """Configuration of the fixed-range single-slope reference ADC.

    Parameters
    ----------
    bits:
        Output resolution (8 for the paper's reference).
    v_full_scale:
        Voltage at the top of the conversion range (2 V).
    capacitance:
        Fixed integration capacitance.  To cover the same maximum current as
        the adaptive design without ranging, this equals the FP-ADC's *total*
        bank capacitance (8 unit capacitors by default).
    integration_time:
        Integration phase duration (100 ns, same as the FP-ADC).
    slope_clock_period:
        Counter clock period; the counting phase lasts ``2^bits`` periods.
    noise_rms:
        Input-referred comparator noise in volts.
    seed:
        Seed of the noise generator.
    """

    bits: int = 8
    v_full_scale: float = 2.0
    capacitance: float = 8 * 105e-15
    integration_time: float = 100e-9
    slope_clock_period: float = 100e-9 / 64
    noise_rms: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        if self.v_full_scale <= 0 or self.capacitance <= 0:
            raise ValueError("v_full_scale and capacitance must be positive")
        if self.integration_time <= 0 or self.slope_clock_period <= 0:
            raise ValueError("times must be positive")

    @property
    def levels(self) -> int:
        """Number of output codes."""
        return 1 << self.bits

    @property
    def conversion_time(self) -> float:
        """Total conversion time (integration + full counter sweep)."""
        return self.integration_time + self.levels * self.slope_clock_period

    @property
    def full_scale_current(self) -> float:
        """Input current mapping to the top code."""
        return self.v_full_scale * self.capacitance / self.integration_time

    @property
    def lsb_current(self) -> float:
        """Current corresponding to one LSB."""
        return self.full_scale_current / self.levels


class IntSingleSlopeADC:
    """Functional model of the fixed-range INT single-slope ADC.

    The converter has a *uniform* quantisation characteristic across its
    whole range — which is exactly why it wastes resolution on large MAC
    results and loses small ones, the motivation for the adaptive FP-ADC.
    """

    def __init__(self, config: IntADCConfig = IntADCConfig(),
                 rng: Optional[np.random.Generator] = None) -> None:
        self.config = config
        self._rng = rng if rng is not None else np.random.default_rng(config.seed)

    @property
    def conversion_time(self) -> float:
        """Total conversion time in seconds."""
        return self.config.conversion_time

    @property
    def full_scale_current(self) -> float:
        """Input current mapping to the top code."""
        return self.config.full_scale_current

    def convert(self, currents: np.ndarray) -> np.ndarray:
        """Convert currents into integer codes (0 .. 2^bits - 1)."""
        currents = np.asarray(currents, dtype=np.float64)
        cfg = self.config
        v_out = np.clip(currents, 0.0, None) * cfg.integration_time / cfg.capacitance
        if cfg.noise_rms > 0:
            v_out = v_out + cfg.noise_rms * self._rng.standard_normal(v_out.shape)
        lsb = cfg.v_full_scale / cfg.levels
        codes = np.rint(v_out / lsb)
        return np.clip(codes, 0, cfg.levels - 1).astype(np.int64)

    def convert_value(self, currents: np.ndarray) -> np.ndarray:
        """Convert currents and return the reconstructed current estimate."""
        codes = self.convert(currents)
        lsb = self.config.full_scale_current / self.config.levels
        return codes * lsb

    def relative_quantisation_error(self, currents: np.ndarray) -> np.ndarray:
        """Per-sample relative error of the uniform quantisation.

        For small inputs this error blows up (a fixed LSB is a large fraction
        of a small current), which is the effect the adaptive FP-ADC removes;
        the ablation benchmark compares both.
        """
        currents = np.asarray(currents, dtype=np.float64)
        estimate = self.convert_value(currents)
        return np.abs(estimate - currents) / np.maximum(np.abs(currents), 1e-18)
