"""Latched comparator with offset, noise and CCDS offset cancellation.

The FP-ADC uses one comparator per column for two purposes: during the
adaptive phase it detects the integrator output crossing ``V_th`` (which
triggers a capacitor-bank expansion), and during the single-slope phase it
detects the ramp crossing the held mantissa voltage.  The paper notes that a
correlated-double-sampling (CCDS) network "compensates for the comparator and
integrator offset voltages during reset" — modelled here as a large reduction
of the static offset, leaving only residual offset and thermal noise.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np


@dataclasses.dataclass
class Comparator:
    """Behavioural clocked comparator.

    Parameters
    ----------
    offset_voltage:
        Raw input-referred offset in volts (before CCDS).
    noise_rms:
        Input-referred rms noise in volts, drawn fresh at every decision.
    hysteresis:
        Hysteresis width in volts (0 disables it).
    ccds_enabled:
        Whether correlated double sampling cancels the static offset.
    ccds_rejection:
        Fraction of the static offset removed by CCDS (0.99 → 1 % residual).
    rng:
        Random generator for the noise draws (seeded for reproducibility).
    """

    offset_voltage: float = 0.0
    noise_rms: float = 0.0
    hysteresis: float = 0.0
    ccds_enabled: bool = True
    ccds_rejection: float = 0.99
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.noise_rms < 0 or self.hysteresis < 0:
            raise ValueError("noise_rms and hysteresis must be non-negative")
        if not 0.0 <= self.ccds_rejection <= 1.0:
            raise ValueError("ccds_rejection must lie in [0, 1]")
        if self.rng is None:
            self.rng = np.random.default_rng(0)
        self._last_output = False
        self._decisions = 0

    # ------------------------------------------------------------------
    @property
    def effective_offset(self) -> float:
        """Offset remaining after (optional) CCDS cancellation."""
        if self.ccds_enabled:
            return self.offset_voltage * (1.0 - self.ccds_rejection)
        return self.offset_voltage

    @property
    def decision_count(self) -> int:
        """Number of comparisons made since construction (drives energy model)."""
        return self._decisions

    def reset_statistics(self) -> None:
        """Clear the decision counter and hysteresis state."""
        self._decisions = 0
        self._last_output = False

    # ------------------------------------------------------------------
    def compare(self, v_positive: float, v_negative: float) -> bool:
        """One clocked decision: is ``v_positive`` above ``v_negative``?

        The effective threshold is perturbed by the residual offset, a fresh
        noise sample, and hysteresis around the previous decision.
        """
        self._decisions += 1
        noise = self.noise_rms * float(self.rng.standard_normal()) if self.noise_rms else 0.0
        threshold_shift = self.effective_offset + noise
        if self.hysteresis > 0.0:
            # The comparator is harder to flip away from its previous state.
            threshold_shift += (-0.5 if self._last_output else 0.5) * self.hysteresis
        result = (v_positive - v_negative) > threshold_shift
        self._last_output = result
        return bool(result)

    def crossing_error(self) -> float:
        """A single sample of the effective decision-level error in volts.

        Used by the functional ADC model, which does not simulate individual
        clock edges but still wants the statistical effect of comparator
        non-idealities on the output code.
        """
        noise = self.noise_rms * float(self.rng.standard_normal()) if self.noise_rms else 0.0
        return self.effective_offset + noise
