"""Whole-macro power breakdown (Fig. 6(a)/(b)) and format comparison.

:class:`MacroPowerModel` produces the per-module energy / power breakdown of
an AFPR-CIM macro in any ``ExMy`` activation format, and
:class:`Int8ReferencePowerModel` produces the same breakdown for the paper's
conventional INT8 design (same array, conventional single-slope ADC, per-row
linear DAC, 500 ns conversion).  :func:`format_power_comparison` assembles the
three-way comparison of Fig. 6.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.config import MacroConfig, e2m5_macro_config, e3m4_macro_config
from repro.power.components import (
    DEFAULT_CALIBRATION,
    ConverterSpec,
    PowerCalibration,
    module_energies,
)


@dataclasses.dataclass(frozen=True)
class PowerBreakdown:
    """Per-module energy of one macro conversion plus derived figures.

    Energies are in joules (per conversion); powers in watts (energy divided
    by the conversion time); throughput in GOPS and efficiency in TOPS/W.
    """

    label: str
    adc_energy: float
    dac_energy: float
    array_energy: float
    digital_energy: float
    conversion_time: float
    operations_per_conversion: int

    @property
    def total_energy(self) -> float:
        """Total energy of one conversion in joules."""
        return self.adc_energy + self.dac_energy + self.array_energy + self.digital_energy

    @property
    def total_power(self) -> float:
        """Average power over one conversion in watts."""
        return self.total_energy / self.conversion_time

    @property
    def module_energies(self) -> Dict[str, float]:
        """Per-module energies keyed by module name."""
        return {
            "adc": self.adc_energy,
            "dac": self.dac_energy,
            "array": self.array_energy,
            "digital": self.digital_energy,
        }

    @property
    def module_powers(self) -> Dict[str, float]:
        """Per-module average powers keyed by module name."""
        return {name: e / self.conversion_time for name, e in self.module_energies.items()}

    @property
    def throughput_gops(self) -> float:
        """Peak throughput in GOPS (GFLOPS for FP formats)."""
        return self.operations_per_conversion / self.conversion_time / 1e9

    @property
    def energy_efficiency_tops_per_watt(self) -> float:
        """Peak energy efficiency in TOPS/W (TFLOPS/W for FP formats)."""
        return self.operations_per_conversion / self.total_energy / 1e12

    @property
    def energy_per_op(self) -> float:
        """Energy per operation in joules."""
        return self.total_energy / self.operations_per_conversion


class MacroPowerModel:
    """Power model of an AFPR-CIM macro in a given activation format.

    Parameters
    ----------
    config:
        Macro configuration (geometry, ADC/DAC formats and timing).
    sparsity:
        Weight sparsity; the paper quotes its headline numbers in
        "high-density mode at 0 % sparsity", the default here.
    calibration:
        Energy calibration constants.
    """

    def __init__(self, config: MacroConfig = MacroConfig(), sparsity: float = 0.0,
                 calibration: PowerCalibration = DEFAULT_CALIBRATION) -> None:
        self.config = config
        self.sparsity = sparsity
        self.calibration = calibration
        self.spec = ConverterSpec.from_adc_config(config.adc)

    def breakdown(self) -> PowerBreakdown:
        """Per-module energy breakdown of one macro conversion."""
        energies = module_energies(
            self.spec,
            rows=self.config.rows,
            cols=self.config.cols,
            sparsity=self.sparsity,
            is_fp_dac=True,
            calibration=self.calibration,
        )
        return PowerBreakdown(
            label=f"AFPR-CIM {self.config.format_name}",
            adc_energy=energies["adc"],
            dac_energy=energies["dac"],
            array_energy=energies["array"],
            digital_energy=energies["digital"],
            conversion_time=self.spec.conversion_time,
            operations_per_conversion=self.config.ops_per_conversion,
        )

    def total_power(self) -> float:
        """Average macro power in watts."""
        return self.breakdown().total_power

    def energy_per_conversion(self) -> float:
        """Total energy of one conversion in joules."""
        return self.breakdown().total_energy

    def energy_efficiency(self) -> float:
        """Peak energy efficiency in TFLOPS/W."""
        return self.breakdown().energy_efficiency_tops_per_watt

    def throughput(self) -> float:
        """Peak throughput in GFLOPS."""
        return self.breakdown().throughput_gops


class Int8ReferencePowerModel:
    """The paper's conventional INT8 design on the same array.

    Same 576 x 256 crossbar and integration phase, but a fixed-range
    single-slope 8-bit ADC (500 ns conversion) and a per-row linear input
    DAC.  Used as the reference bar of Fig. 6(a)/(b) and as the "analog INT8
    CIM" own-design baseline.
    """

    def __init__(self, rows: int = 576, cols: int = 256, bits: int = 8,
                 sparsity: float = 0.0,
                 unit_capacitance: float = 105e-15,
                 calibration: PowerCalibration = DEFAULT_CALIBRATION) -> None:
        if bits < 1:
            raise ValueError("bits must be >= 1")
        self.rows = rows
        self.cols = cols
        self.bits = bits
        self.sparsity = sparsity
        self.calibration = calibration
        self.spec = ConverterSpec.int_single_slope(bits=bits, unit_capacitance=unit_capacitance)

    def breakdown(self) -> PowerBreakdown:
        """Per-module energy breakdown of one INT8 macro conversion."""
        energies = module_energies(
            self.spec,
            rows=self.rows,
            cols=self.cols,
            sparsity=self.sparsity,
            is_fp_dac=False,
            calibration=self.calibration,
        )
        return PowerBreakdown(
            label=f"INT{self.bits} reference",
            adc_energy=energies["adc"],
            dac_energy=energies["dac"],
            array_energy=energies["array"],
            digital_energy=energies["digital"],
            conversion_time=self.spec.conversion_time,
            operations_per_conversion=2 * self.rows * self.cols,
        )

    def total_power(self) -> float:
        """Average macro power in watts."""
        return self.breakdown().total_power

    def energy_efficiency(self) -> float:
        """Peak energy efficiency in TOPS/W."""
        return self.breakdown().energy_efficiency_tops_per_watt


def energy_at_unit_capacitance(config: MacroConfig, unit_capacitance: float,
                               sparsity: float = 0.0,
                               calibration: PowerCalibration = DEFAULT_CALIBRATION
                               ) -> float:
    """Per-conversion energy (joules) with the ADC capacitor resized.

    The noise-floor-vs-energy characterization sweeps the unit integration
    capacitor: a larger capacitor lowers the kT/C floor but costs
    proportionally more switching energy.  This evaluates one operating
    point of that curve without mutating the caller's config.
    """
    if unit_capacitance <= 0:
        raise ValueError("unit_capacitance must be positive")
    scaled = dataclasses.replace(
        config, adc=dataclasses.replace(config.adc,
                                        unit_capacitance=unit_capacitance))
    return MacroPowerModel(scaled, sparsity=sparsity,
                           calibration=calibration).energy_per_conversion()


def format_power_comparison(sparsity: float = 0.0,
                            calibration: PowerCalibration = DEFAULT_CALIBRATION
                            ) -> List[PowerBreakdown]:
    """The three-way comparison of Fig. 6: INT8, FP8 E3M4 and FP8 E2M5.

    Returns the breakdowns in the order the paper plots them.
    """
    int8 = Int8ReferencePowerModel(sparsity=sparsity, calibration=calibration).breakdown()
    e3m4 = MacroPowerModel(e3m4_macro_config(), sparsity=sparsity,
                           calibration=calibration).breakdown()
    e2m5 = MacroPowerModel(e2m5_macro_config(), sparsity=sparsity,
                           calibration=calibration).breakdown()
    return [int8, e3m4, e2m5]
