"""Unit tests for tensor quantisers, calibration and error metrics."""

import numpy as np
import pytest

from repro.formats import (
    E2M5,
    E3M4,
    INT8,
    CalibrationMethod,
    FloatQuantizer,
    IntQuantizer,
    calibrate_scale,
    cosine_similarity,
    max_abs_error,
    quantization_mse,
    quantization_sqnr_db,
    relative_error,
)
from repro.formats.quantizer import make_quantizer


class TestCalibration:
    def test_absmax_scale_covers_range(self):
        x = np.array([-4.0, 2.0])
        scale = calibrate_scale(x, INT8)
        assert scale == pytest.approx(4.0 / 127)

    def test_absmax_scale_float_format(self):
        x = np.array([-4.0, 2.0])
        scale = calibrate_scale(x, E2M5)
        assert scale == pytest.approx(4.0 / E2M5.max_value)

    def test_zero_input_gives_unit_scale(self):
        assert calibrate_scale(np.zeros(5), INT8) == 1.0

    def test_percentile_clips_outliers(self):
        rng = np.random.default_rng(0)
        x = np.concatenate([rng.standard_normal(10000), [1000.0]])
        absmax = calibrate_scale(x, INT8, method=CalibrationMethod.ABSMAX)
        pct = calibrate_scale(x, INT8, method=CalibrationMethod.PERCENTILE, percentile=99.9)
        assert pct < absmax / 10

    def test_mse_search_not_worse_than_absmax(self):
        rng = np.random.default_rng(1)
        x = np.concatenate([rng.standard_normal(5000), 50 * rng.standard_normal(5)])
        q_absmax = IntQuantizer(fmt=INT8)
        q_absmax.calibrate(x)
        q_mse = IntQuantizer(fmt=INT8, method=CalibrationMethod.MSE)
        q_mse.calibrate(x)
        mse_absmax = quantization_mse(x, q_absmax.quantize(x))
        mse_mse = quantization_mse(x, q_mse.quantize(x))
        assert mse_mse <= mse_absmax * 1.001


class TestQuantizers:
    def test_int_quantizer_roundtrip_error(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(2000)
        quantizer = IntQuantizer(fmt=INT8)
        quantizer.calibrate(x)
        y = quantizer.quantize(x)
        assert np.max(np.abs(y - x)) <= quantizer.scale / 2 + 1e-12

    def test_float_quantizer_output_on_grid(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(500)
        quantizer = FloatQuantizer(fmt=E2M5)
        quantizer.calibrate(x)
        y = quantizer.quantize(x) / quantizer.scale
        # Every quantised (and rescaled) value must be representable.
        np.testing.assert_allclose(E2M5.quantize(y), y, atol=1e-12)

    def test_observe_tracks_running_max(self):
        quantizer = IntQuantizer(fmt=INT8)
        quantizer.observe(np.array([1.0]))
        first = quantizer.scale
        quantizer.observe(np.array([10.0]))
        assert quantizer.scale > first
        quantizer.observe(np.array([0.1]))
        assert quantizer.scale == pytest.approx(10.0 / 127)

    def test_dynamic_quantisation_without_calibration(self):
        quantizer = IntQuantizer(fmt=INT8)
        x = np.array([-1.0, 0.5, 1.0])
        y = quantizer.quantize(x)
        assert y.shape == x.shape

    def test_make_quantizer_dispatch(self):
        assert isinstance(make_quantizer(INT8), IntQuantizer)
        assert isinstance(make_quantizer(E3M4), FloatQuantizer)
        with pytest.raises(TypeError):
            make_quantizer("INT8")

    def test_format_names_and_bit_widths(self):
        assert make_quantizer(INT8).format_name == "INT8"
        assert make_quantizer(E2M5).bit_width == 8


class TestMetrics:
    def test_mse_zero_for_identical(self):
        x = np.arange(10.0)
        assert quantization_mse(x, x) == 0.0

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            quantization_mse(np.zeros(3), np.zeros(4))

    def test_sqnr_infinite_for_perfect(self):
        x = np.ones(10)
        assert quantization_sqnr_db(x, x) == np.inf

    def test_sqnr_decreases_with_noise(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(1000)
        low = quantization_sqnr_db(x, x + 0.01 * rng.standard_normal(1000))
        high = quantization_sqnr_db(x, x + 0.1 * rng.standard_normal(1000))
        assert low > high

    def test_cosine_similarity_identical(self):
        x = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(x, x) == pytest.approx(1.0)

    def test_cosine_similarity_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_max_abs_error(self):
        assert max_abs_error(np.array([0.0, 1.0]), np.array([0.5, 1.0])) == 0.5

    def test_relative_error(self):
        assert relative_error(np.array([2.0]), np.array([1.0])) == pytest.approx(0.5, rel=1e-6)
