"""The asyncio inference service: queue -> dynamic batcher -> scheduler ->
execution backend.

:class:`InferenceService` turns the blocking ``run_model`` world of
:mod:`repro.exec` into a request-serving system: clients submit single
images (or small stacked requests) and await logits; a dynamic micro-batcher
coalesces the queue into execution batches; a multi-macro scheduler places
each batch on one of ``num_workers`` workers, each owning its own model
replica, prepared execution backend (via
:class:`~repro.exec.engine.BatchRunner`) and occupancy-tracked
:class:`~repro.core.accelerator.AFPRAccelerator`.  Batch forwards run in
worker threads (NumPy releases the GIL in the kernels that matter), so
replicas genuinely overlap.

Determinism contract: requests are batched strictly in arrival order, and a
batch's logits are exactly ``backend.forward`` of the stacked request rows —
so when the coalesced batch equals the batch a direct ``run_model`` call
would see, the served logits are bit-identical on every backend, and on the
row-independent digital backends (``ideal``, ``fake_quant``) they are
bit-identical regardless of how the batcher happened to split the traffic.

Fault tolerance: a worker-level fault (process SIGKILLed, shm ring broken,
pipeline stage death) is classified apart from request-level errors.  The
dead worker is marked unplaceable, its in-flight and queued batches are
re-dispatched to surviving replicas up to ``max_retries`` attempts, and a
background task respawns the worker — loading its compiled plan from the
on-disk :class:`~repro.exec.plan.PlanCache` when one is configured, so
respawn skips recompilation.  Request-level errors (a forward exception)
still fail only their own batch: they would fail identically on any
replica.  **Noise-stream caveat**: a re-dispatched batch re-runs on a
replica whose analog noise streams have advanced differently, so retried
analog batches draw fresh noise — bit-identity against a single fault-free
run is only guaranteed for the no-fault path.  Runs that need bit identity
even under faults should pin ``retry_policy="fail_fast"``, which restores
the fail-the-batch behaviour while keeping respawn.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import copy
import dataclasses
import pickle
import signal
import time
import warnings
from random import Random
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exec.backend import ExecutionBackend, ExecutionContext
from repro.exec.engine import BatchRunner
from repro.exec.plan import PlanCache, plan_fingerprint
from repro.exec.registry import create_backend
from repro.faults import injector as fault_injector
from repro.faults.injector import FaultInjector, FaultSpec
from repro.nn.model import Model
from repro.obs.trace import PlanTraceBuffer, RequestTrace, Tracer, plan_trace
from repro.power.efficiency import energy_per_conversion
from repro.serve.batcher import (
    CLOSE,
    DEFAULT_PRIORITY,
    DynamicBatcher,
    Request,
    fail_requests,
    scatter_results,
    stack_requests,
)
from repro.serve.energy import estimate_conversions_per_sample
from repro.serve.metrics import (
    MetricsSnapshot,
    ServiceMetrics,
    StageOccupancy,
    WorkerSnapshot,
)
from repro.serve.scheduler import (
    NoAliveWorkersError,
    WorkerState,
    build_worker_states,
    create_scheduler,
)
from repro.serve.shm import IntegrityError, ShmChannel, SlotRing


#: Execution plan owned by one process-pool worker (set by the initializer).
_PROCESS_PLAN = None

#: Worker-side (requests, responses) ring pair once the parent attached one.
_PROCESS_RINGS: Optional[Tuple[SlotRing, SlotRing]] = None
#: Keeps the worker's heartbeat-ring attachment alive for the process
#: lifetime (the beat thread writes through it until the process dies).
_PROCESS_HEARTBEAT_RING: Optional[SlotRing] = None


def _init_process_worker(payload: bytes,
                         fault_spec: Optional[Dict] = None) -> None:
    """Process-pool initializer: unpickle the shipped execution plan.

    Runs once per worker process.  The plan arrives as explicit pickle bytes
    (not fork-inherited state) so ``workers="process"`` behaves identically
    under every multiprocessing start method.  ``fault_spec`` (plain dict
    form) installs the deterministic fault injector process-globally —
    each worker process owns its own per-site call counters, which is what
    keeps chaos runs replayable across respawns.
    """
    global _PROCESS_PLAN
    if fault_spec:
        fault_injector.install(fault_spec)
    _PROCESS_PLAN = pickle.loads(payload)


def _process_ready() -> Optional[int]:
    """Probe task: the plan's conversion counter, or None if uninitialised.

    The counter is non-zero right after prepare (macro calibration spends
    conversions), so the parent records it as the metering baseline — the
    first served batch must not be billed for preparation, exactly as the
    thread workers' per-forward deltas never are.
    """
    if _PROCESS_PLAN is None:
        return None
    return _PROCESS_PLAN.conversions()


def _process_forward(images: np.ndarray, traced: bool = False) -> Tuple:
    """Pickle-transport batch: (logits, total conversions, forward s, spans).

    ``traced`` batches record per-layer plan spans into a worker-local
    buffer (this interpreter's ``perf_counter`` clock, relative to the
    forward start) that ride home on the result tuple for the parent to
    re-anchor.
    """
    fault_injector.fire("worker.forward")
    start = time.perf_counter()
    spans: List = []
    if traced:
        buffer = PlanTraceBuffer(t0=start)
        with plan_trace(buffer):
            logits = _PROCESS_PLAN.forward(images)
        spans = buffer.records
    else:
        logits = _PROCESS_PLAN.forward(images)
    return (logits, _PROCESS_PLAN.conversions(),
            time.perf_counter() - start, spans)


def _process_attach_rings(request_name: str, response_name: str, slots: int,
                          request_nbytes: int, response_nbytes: int,
                          checksum: bool = False) -> bool:
    """Attach the parent's shared-memory rings (worker side, never unlinks)."""
    global _PROCESS_RINGS
    requests = SlotRing.attach(request_name, slots, request_nbytes,
                               checksum=checksum)
    responses = SlotRing.attach(response_name, slots, response_nbytes,
                                checksum=checksum)
    if fault_injector.get_installed() is not None:
        # Response corruption is injected post-CRC into the slot this
        # worker just wrote, so the parent's read-side check catches it.
        responses.fault_site = "shm.response"
    _PROCESS_RINGS = (requests, responses)
    return True


def _process_start_heartbeat(name: str, slots: int, index: int,
                             interval_s: float) -> bool:
    """Attach the parent's heartbeat ring and start the beat thread."""
    import threading

    global _PROCESS_HEARTBEAT_RING
    ring = SlotRing.attach(name, slots, 8)
    # The ring must outlive this call: dropping the last reference would
    # garbage-collect the SharedMemory mapping under the beat thread, which
    # then dies after its first write — and the watchdog would reap every
    # healthy worker at exactly the timeout.
    _PROCESS_HEARTBEAT_RING = ring
    cell = ring.view(index, (1,), np.float64)

    def _beat() -> None:
        count = 0.0
        while True:
            count += 1.0
            cell[0] = count
            time.sleep(interval_s)

    threading.Thread(target=_beat, daemon=True, name="heartbeat").start()
    return True


def _process_forward_shm(slot: int, shape: Tuple[int, ...],
                         traced: bool = False) -> Tuple:
    """Shared-memory batch: read the request slot, run, fill the response slot.

    The plan consumes a zero-copy view of the request slot (forwards never
    mutate their input) and the logits are written into the matching
    response slot; only these few coordinates cross the executor pipe.
    Logits too large for the slot fall back to being returned by value.
    Traced batches additionally ship their per-layer plan spans (see
    :func:`_process_forward`) — span tuples are tiny, so they ride the
    pipe even on the shared-memory transport.
    """
    requests, responses = _PROCESS_RINGS
    images = requests.read(slot, shape)
    fault_injector.fire("worker.forward")
    start = time.perf_counter()
    spans: List = []
    if traced:
        buffer = PlanTraceBuffer(t0=start)
        with plan_trace(buffer):
            logits = _PROCESS_PLAN.forward(images)
        spans = buffer.records
    else:
        logits = _PROCESS_PLAN.forward(images)
    forward_s = time.perf_counter() - start
    logits = np.ascontiguousarray(logits, dtype=np.float64)
    total = _PROCESS_PLAN.conversions()
    if responses.fits(logits.nbytes):
        responses.write(slot, logits)
        return ("shm", logits.shape, total, forward_s, spans)
    return ("pickle", logits, total, forward_s, spans)


def _process_profile() -> Dict[str, float]:
    """Per-stage wall-clock breakdown of the worker's plan."""
    return _PROCESS_PLAN.stage_profile()


class _ThreadWorker:
    """In-loop worker: a prepared BatchRunner driven via ``asyncio.to_thread``."""

    mode = "thread"

    def __init__(self, runner: BatchRunner) -> None:
        self.runner = runner

    async def forward(self, images: np.ndarray, traced: bool = False
                      ) -> Tuple[np.ndarray, int, Optional[List]]:
        """Run one batch; returns (logits, measured conversions, remote spans).

        ``remote`` is None untraced, else ``[(None, forward_s, records)]``
        — the worker-clock span payload :meth:`Tracer.attach_remote`
        re-anchors under the dispatch span.  Thread workers share the
        service clock, but shipping relative spans keeps one format across
        all three substrates.
        """
        before = self.runner.conversions()
        if traced:
            logits, forward_s, records = await asyncio.to_thread(
                self._traced_forward, images)
            remote: Optional[List] = [(None, forward_s, records)]
        else:
            logits = await asyncio.to_thread(self.runner.forward, images)
            remote = None
        return logits, self.runner.conversions() - before, remote

    def _traced_forward(self, images: np.ndarray) -> Tuple:
        # Runs inside the asyncio.to_thread worker thread, so the
        # thread-local plan-trace buffer never leaks across concurrent
        # batches on other threads.
        start = time.perf_counter()
        buffer = PlanTraceBuffer(t0=start)
        with plan_trace(buffer):
            logits = self.runner.forward(images)
        return logits, time.perf_counter() - start, buffer.records

    async def stage_profile(self) -> Dict[str, float]:
        """The runner's plan-stage breakdown."""
        return self.runner.stage_profile()

    def kill(self) -> None:
        """No-op: Python threads cannot be killed.

        A hung thread worker is still *classified* dead by the dispatch
        deadline (its batches re-dispatch and a replacement runner is
        built); the wedged thread itself is abandoned and only releases
        its core when its forward eventually returns.
        """

    async def close(self) -> None:
        """Tear the backend off the replica."""
        await asyncio.to_thread(self.runner.close)


class _ProcessWorker:
    """Out-of-process worker: a pickled plan running in its own interpreter.

    One single-process executor per worker keeps batch→worker affinity (the
    scheduler's placement decisions stay meaningful) and gives each plan a
    real core of its own — NumPy sections that hold the GIL no longer
    serialise against the other replicas.

    Transport: ``"shm"`` (default) serves steady-state batches through the
    parent-owned shared-memory rings of :mod:`repro.serve.shm` — one copy
    in, one copy out, a fixed slot count with backpressure and only slot
    coordinates on the executor pipe.  The first batch rides the pickle
    path and teaches the ring its slot layout; batches that do not fit a
    slot (oversized one-off requests) fall back to pickling per batch.
    ``"pickle"`` keeps the original serialise-every-batch transport (the
    benchmark baseline).  ``transport_s`` accumulates the time each batch
    spent outside the remote forward — serialisation, copies and executor
    round-trip — and feeds the ``--profile`` transport row.
    """

    mode = "process"

    def __init__(self, payload: bytes, transport: str = "shm",
                 max_batch: int = 64, slots: int = 4,
                 checksum: bool = False, fault_spec: Optional[Dict] = None,
                 heartbeat_interval_s: Optional[float] = None) -> None:
        self.executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=1, initializer=_init_process_worker,
            initargs=(payload, fault_spec))
        self.transport = transport
        self.max_batch = max(int(max_batch), 1)
        self.slots = max(int(slots), 1)
        self.checksum = bool(checksum)
        self.fault_spec = fault_spec
        self.heartbeat_interval_s = heartbeat_interval_s
        self.transport_s = 0.0
        self._conversions_total = 0
        self._channel: Optional[ShmChannel] = None
        self._free_slots: Optional[asyncio.Queue] = None
        self._logit_row_nbytes = 0
        self._heartbeat_ring: Optional[SlotRing] = None

    async def start(self) -> None:
        """Fail fast if the worker process cannot reconstruct the plan."""
        loop = asyncio.get_running_loop()
        baseline = await loop.run_in_executor(self.executor, _process_ready)
        if baseline is None:
            raise RuntimeError("process worker failed to initialise its plan")
        self._conversions_total = baseline
        if self.heartbeat_interval_s is not None:
            try:
                ring = SlotRing(1, 8)
                await loop.run_in_executor(
                    self.executor, _process_start_heartbeat, ring.name, 1, 0,
                    float(self.heartbeat_interval_s))
                self._heartbeat_ring = ring
            except Exception as exc:  # noqa: BLE001 — watchdog is optional
                warnings.warn(
                    f"worker heartbeat unavailable ({exc!r}); running "
                    "without the heartbeat watchdog", RuntimeWarning,
                    stacklevel=2)

    def heartbeat_counts(self) -> Optional[Tuple[float, ...]]:
        """The worker's heartbeat counter, or None when disabled."""
        if self._heartbeat_ring is None:
            return None
        return (float(self._heartbeat_ring.view(0, (1,), np.float64)[0]),)

    def kill(self) -> None:
        """SIGKILL the worker process (hung-worker reaper; sync, best-effort).

        ``close()``'s ``executor.shutdown(wait=True)`` would join a *hung*
        worker process forever, so the watchdog path hard-kills it first —
        after which shutdown's join returns immediately.
        """
        for proc in list(getattr(self.executor, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:  # noqa: BLE001 — already reaped
                pass

    async def _build_channel(self, images: np.ndarray, logits: np.ndarray) -> None:
        """Size and attach the rings from the first served batch's layout."""
        rows = max(int(images.shape[0]), 1)
        row_nbytes = max(images.nbytes // rows, 1)
        logit_row_nbytes = max(logits.nbytes // rows, 8)
        slot_rows = max(self.max_batch, rows)
        loop = asyncio.get_running_loop()
        channel: Optional[ShmChannel] = None
        try:
            channel = ShmChannel(self.slots, slot_rows * row_nbytes,
                                 slot_rows * logit_row_nbytes,
                                 checksum=self.checksum)
            if self.fault_spec:
                # Request slots are written by the parent; the injected
                # corruption flips bytes after the CRC header is stored.
                channel.requests.fault_site = "shm.request"
            await loop.run_in_executor(self.executor, _process_attach_rings,
                                       *channel.describe())
        except Exception as exc:  # noqa: BLE001 — /dev/shm unavailable, worker dead…
            # Shared memory is an optimisation; keep serving over pickle —
            # but loudly, so an unmounted /dev/shm cannot silently turn an
            # A/B transport comparison into pickle-vs-pickle.
            if channel is not None:
                channel.close(unlink=True)
            self.transport = "pickle"
            warnings.warn(
                f"shared-memory transport unavailable ({exc!r}); "
                "process worker falls back to the pickle transport",
                RuntimeWarning, stacklevel=2)
            return
        self._channel = channel
        self._logit_row_nbytes = logit_row_nbytes
        self._free_slots = asyncio.Queue()
        for slot in range(self.slots):
            self._free_slots.put_nowait(slot)

    def _slot_serves(self, images: np.ndarray) -> bool:
        return (self._channel is not None
                and self._channel.requests.fits(images.nbytes)
                and self._channel.responses.fits(
                    int(images.shape[0]) * self._logit_row_nbytes))

    @property
    def shm_segment_names(self) -> List[str]:
        """Names of this worker's segments (empty on the pickle transport)."""
        names = [] if self._channel is None else list(self._channel.segment_names)
        if self._heartbeat_ring is not None:
            names.append(self._heartbeat_ring.name)
        return names

    async def forward(self, images: np.ndarray, traced: bool = False
                      ) -> Tuple[np.ndarray, int, Optional[List]]:
        """Run one batch; returns (logits, measured conversions, remote spans).

        ``remote`` (traced batches only) is ``[(None, forward_s, records)]``
        — the worker interpreter's relative-clock spans, piggybacked on the
        result tuple over whichever transport served the batch.
        """
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        if self._slot_serves(images):
            # Backpressure: wait for a free slot instead of buffering.
            slot = await self._free_slots.get()
            try:
                self._channel.requests.write(slot, images)
                outcome = await loop.run_in_executor(
                    self.executor, _process_forward_shm, slot, images.shape,
                    traced)
                if outcome[0] == "shm":
                    _, shape, total, forward_s, spans = outcome
                    # Copy out before the slot is released for reuse; with
                    # checksums on, read() verifies the worker's CRC here.
                    logits = np.array(self._channel.responses.read(slot, shape))
                else:
                    _, logits, total, forward_s, spans = outcome
            finally:
                self._free_slots.put_nowait(slot)
        else:
            logits, total, forward_s, spans = await loop.run_in_executor(
                self.executor, _process_forward, images, traced)
            if self.transport == "shm" and self._channel is None:
                await self._build_channel(images, logits)
        measured = total - self._conversions_total
        self._conversions_total = total
        self.transport_s += max(time.perf_counter() - start - forward_s, 0.0)
        remote = [(None, forward_s, spans)] if traced else None
        return logits, measured, remote

    async def stage_profile(self) -> Dict[str, float]:
        """The remote plan's stage breakdown plus parent-side transport time."""
        loop = asyncio.get_running_loop()
        profile = await loop.run_in_executor(self.executor, _process_profile)
        profile["transport_s"] = self.transport_s
        return profile

    async def close(self) -> None:
        """Shut the worker process down and unlink its shared memory.

        The parent owns the segments, so they are removed even when the
        worker process already crashed mid-batch.
        """
        try:
            await asyncio.to_thread(self.executor.shutdown, True)
        finally:
            if self._channel is not None:
                self._channel.close(unlink=True)
                self._channel = None
            if self._heartbeat_ring is not None:
                self._heartbeat_ring.close()
                self._heartbeat_ring.unlink()
                self._heartbeat_ring = None


class _PipelineWorker:
    """Sharded worker: the replica's plan split across pipeline stage processes.

    The replica's compiled plan is cut at layer boundaries into per-stage
    partial plans (greedy cost balance under the ``macro_budget`` crossbar
    constraint — see :mod:`repro.shard.partition`), each stage runs in its
    own process, and batches stream between stages over per-edge
    shared-memory slot rings (:class:`repro.shard.pipeline.ShardedPipeline`).
    Unlike the one-batch-at-a-time workers above, a pipeline worker serves
    ``max_inflight`` batches concurrently — that overlap across stages is
    the throughput win — so the service's worker loop pumps it with
    concurrent tasks instead of awaiting each batch.

    Submissions are ordered by an asyncio lock: batches must *enter* the
    pipeline in dispatch order (the FIFO stage rings then preserve it),
    which is what keeps pipelined serving bit-identical to single-worker
    serving even for the order-sensitive analog noise streams.
    """

    mode = "pipeline"

    def __init__(self, partition, max_batch: int = 64, slots: int = 2,
                 checksum: bool = False, fault_spec: Optional[Dict] = None,
                 heartbeat_interval_s: Optional[float] = None) -> None:
        from repro.shard.pipeline import ShardedPipeline

        self.partition = partition
        self.pipeline = ShardedPipeline(partition.payloads,
                                        max_batch=max_batch, slots=slots,
                                        checksum=checksum,
                                        fault_spec=fault_spec,
                                        heartbeat_interval_s=heartbeat_interval_s)
        #: Batches the worker loop may keep in flight at once.
        self.max_inflight = partition.num_stages + max(int(slots), 1)
        self.transport_s = 0.0
        self.stage_stats: List[Dict] = []
        self._conversions_total = 0
        self._submit_lock: Optional[asyncio.Lock] = None

    async def start(self) -> None:
        """Spawn the stage processes; fails fast if a stage plan won't load."""
        self._submit_lock = asyncio.Lock()
        await asyncio.to_thread(self.pipeline.start)

    def heartbeat_counts(self) -> Optional[Tuple[float, ...]]:
        """Per-stage heartbeat counters, or None when disabled."""
        return self.pipeline.heartbeat_counts()

    def kill(self) -> None:
        """SIGKILL every stage process (hung-pipeline reaper)."""
        self.pipeline.kill()

    @property
    def shm_segment_names(self) -> List[str]:
        """Names of the live stage-ring segments (for the leak tests)."""
        return self.pipeline.segment_names

    async def forward(self, images: np.ndarray, traced: bool = False
                      ) -> Tuple[np.ndarray, int, Optional[List]]:
        """Run one batch; returns (logits, measured conversions, remote spans).

        For traced batches every stage ships its per-layer spans and this
        batch's forward seconds in its stats dict; ``remote`` lays them out
        in stage order — ``[(stage_index, batch_forward_s, spans), ...]`` —
        so the parent renders the stages sequentially under the dispatch
        span (their real overlap is across *batches*, not within one).
        """
        loop = asyncio.get_running_loop()
        async with self._submit_lock:
            # submit() may block on edge-0 backpressure; keep it off the
            # event loop, but under the lock so batches enter in order.
            future = await loop.run_in_executor(None, self.pipeline.submit,
                                                images, traced)
        logits, stats = await asyncio.wrap_future(future)
        # Each stage stamps its cumulative conversion count as the batch
        # passes, so a completed batch carries a consistent "all stages
        # through batch b" total; deltas between completions meter batches.
        total = sum(stage["conversions"] for stage in stats)
        measured = total - self._conversions_total
        self._conversions_total = total
        self.stage_stats = stats
        self.transport_s = sum(stage["transport_s"] for stage in stats)
        remote = None
        if traced:
            remote = [
                (stage.get("stage", position),
                 stage.get("batch_forward_s", 0.0),
                 stage.get("spans", []))
                for position, stage in enumerate(stats)
            ]
        return logits, measured, remote

    async def stage_profile(self) -> Dict[str, float]:
        """Summed plan-stage breakdown plus a per-pipeline-stage list."""
        stats = self.pipeline.stage_stats() or self.stage_stats
        combined: Dict[str, float] = {
            "dac_s": 0.0, "crossbar_s": 0.0, "adc_s": 0.0, "digital_s": 0.0,
            "total_s": 0.0, "forwards": 0.0, "transport_s": 0.0,
            "bubble_s": 0.0,
        }
        stages = []
        for stage in stats:
            profile = dict(stage.get("profile", {}))
            for key in ("dac_s", "crossbar_s", "adc_s", "digital_s",
                        "total_s"):
                combined[key] += float(profile.get(key, 0.0))
            combined["forwards"] = max(combined["forwards"],
                                       float(profile.get("forwards", 0.0)))
            combined["transport_s"] += float(stage.get("transport_s", 0.0))
            combined["bubble_s"] += float(stage.get("bubble_s", 0.0))
            profile["transport_s"] = float(stage.get("transport_s", 0.0))
            profile["bubble_s"] = float(stage.get("bubble_s", 0.0))
            stages.append({
                "stage": stage.get("stage"),
                "layers": list(stage.get("layers", (0, 0))),
                "batches": stage.get("batches", 0),
                "profile": profile,
            })
        combined["stages"] = stages
        return combined

    async def close(self) -> None:
        """Stop the stage processes and unlink every stage-ring segment."""
        await asyncio.to_thread(self.pipeline.close)


class ServiceClosedError(RuntimeError):
    """Raised when submitting to a service that is not accepting requests."""


class ServiceOverloadedError(RuntimeError):
    """Raised (via the request future) when the service backlog is full."""


class ServiceDegradedError(ServiceOverloadedError):
    """Raised (via the request future) when a degraded pool sheds the
    request's priority class at admission — the fast 503-style rejection
    of graceful degradation, instead of queueing past every deadline."""


class WorkerHungError(RuntimeError):
    """A worker blew its dispatch deadline or stopped heartbeating.

    Classified exactly like a worker death: the worker is reaped (hard-
    killed where a process backs it) and respawned, and its batches
    re-dispatch under the normal retry budget."""


@dataclasses.dataclass
class ServeConfig:
    """Configuration of an :class:`InferenceService`.

    Attributes
    ----------
    backend:
        Registered backend name (instances are allowed for a single
        worker only — backend state cannot be shared across replicas).
    backend_options:
        Keyword arguments for ``create_backend`` when ``backend`` is a name.
    max_batch:
        Flush a batch at this many sample rows.
    max_wait_ms:
        Flush a non-full batch this long after its oldest request.
    num_workers:
        Model replicas (each with its own prepared backend).
    workers:
        Worker substrate: ``"thread"`` (default) runs each replica's
        forwards in worker threads of the service process; ``"process"``
        builds each replica's execution plan once, pickles it and ships it
        to a dedicated single-process executor — real cores instead of
        GIL-shared threads, with deterministic per-worker state (replica
        ``i`` is constructed by the same seeded recipe in both modes, so
        served logits match the in-loop workers bit for bit).
    transport:
        Batch transport of ``workers="process"``: ``"shm"`` (default)
        moves images and logits through parent-owned shared-memory rings
        (zero-copy views in the worker, fixed slot count with backpressure,
        unlinked on close); ``"pickle"`` serialises every batch through the
        executor pipe — the pre-shared-memory behaviour, kept as the
        benchmark baseline.  Ignored by thread workers.
    transport_slots:
        Ring slots per process worker (the in-flight bound of the
        shared-memory transport); also the per-edge slot count of the
        pipeline stage rings.
    pipeline_stages:
        ``>= 2`` serves each replica as a sharded stage pipeline: the
        compiled plan is cut at layer boundaries into that many per-stage
        partial plans (cost-balanced on ``pipeline_probe`` /
        ``context.calibration`` when available), each stage runs in its
        own process, and batches stream between stages over shared-memory
        slot rings with backpressure (:mod:`repro.shard`).  ``1`` (the
        default) keeps the ordinary one-worker-per-replica modes.
    pipeline_probe:
        Optional representative input batch used to measure per-layer cost
        for the pipeline partitioner (falls back to ``context.calibration``,
        then to a parameter-count proxy).
    macro_budget:
        Per-worker crossbar capacity in macros.  With ``pipeline_stages >=
        2`` it caps every stage's mapped-macro footprint (the partitioner
        cuts so each stage fits); with one stage a model whose mapped tiles
        exceed the budget is rejected at ``start`` — shard it instead.
        ``None`` (default) models unlimited capacity.
    macros_per_worker:
        Modelled AFPR macros per worker (occupancy accounting).
    policy:
        Scheduling policy name (``round_robin`` or ``least_loaded``).
    queue_capacity:
        Admission-control bound: reject arrivals while this many admitted
        requests are still outstanding (queued, batched or in flight on a
        worker — ``None`` = unbounded).  Bounding only the raw request
        queue would be useless, since the dispatcher drains it into the
        per-worker queues immediately.
    context:
        Execution context shared by every worker's backend (calibration,
        macro config, formats, seed).
    estimate_energy:
        Estimate conversions for digital backends so energy-per-request is
        reported even when the backend meters none.
    retry_policy:
        What happens to the in-flight batches of a worker that *died*
        (process exit, broken shm transport, pipeline stage death — never
        plain forward exceptions, which fail only their own batch).
        ``"redispatch"`` (default) re-queues them onto surviving replicas
        up to ``max_retries`` attempts.  Retried analog batches draw fresh
        noise (the replacement replica's streams have advanced
        differently), so bit-identity-critical runs should pin
        ``"fail_fast"``, which fails the dead worker's batches immediately
        (respawn still restores capacity).
    max_retries:
        Re-dispatch attempts per batch before its requests fail.
    respawn:
        Rebuild a dead worker in the background (same replica recipe; the
        plan cache makes this recompile-free for process workers).
    recovery_wait_s:
        How long a batch may wait for a respawn when *no* worker is alive
        before its requests fail.
    plan_cache:
        Directory of the on-disk compiled-plan cache
        (:class:`repro.exec.plan.PlanCache`).  Process-worker plans are
        looked up by model/backend/context fingerprint so cold starts and
        respawns skip plan compilation; ``None`` (default) disables the
        cache (respawns still reuse the in-memory payload).
    priority_classes:
        Optional ``{class_name: max_wait_ms}`` SLO tiers.  A request's
        class picks its flush-deadline budget (see
        :class:`~repro.serve.batcher.DynamicBatcher`); unknown class names
        are rejected at submit.  ``None`` keeps the single global
        ``max_wait_ms`` for everyone.
    autoscale:
        Enable queue-depth/occupancy driven replica autoscaling: spawn a
        worker when the outstanding backlog exceeds one ``max_batch`` per
        alive worker, retire the newest one after a sustained idle period.
        The pool stays within ``[min_workers, max_workers]``.
    min_workers / max_workers:
        Autoscaling bounds (default: both ``num_workers``, i.e. no
        scaling even when ``autoscale`` is on).
    autoscale_interval_ms:
        Period of the autoscaler's signal sampling.
    scale_down_idle_ticks:
        Consecutive idle autoscaler ticks before a replica is retired.
    dispatch_timeout_s:
        Per-dispatch deadline: a batch whose worker forward exceeds it is
        treated as served by a *hung* worker — the worker is reaped (hard
        SIGKILL for process/pipeline substrates) and respawned, and the
        batch re-dispatches under ``max_retries`` exactly like a death.
        ``None`` (default) disables the deadline.  Note the first batch
        per worker rides the warm-up path, so leave headroom above the
        steady-state forward time.
    class_dispatch_timeout_s:
        Optional ``{class_name: seconds}`` per-SLO-class deadline
        overrides; a batch uses the tightest deadline over its member
        requests' classes, falling back to ``dispatch_timeout_s``.
    heartbeat_timeout_s:
        Enables the heartbeat watchdog: process/pipeline workers run a
        daemon beat thread updating a parent-owned shared-memory counter
        every ``heartbeat_interval_s``; a worker whose counters stall
        longer than this is declared hung (reaped + respawned) even with
        no batch in flight — catching frozen/SIGSTOPped processes the
        dispatch deadline alone cannot see.  ``None`` (default) disables
        the watchdog.
    heartbeat_interval_s:
        Beat period of the worker-side heartbeat threads and sampling
        period of the parent watchdog.
    redispatch_backoff_base_s:
        Exponential backoff before each batch re-dispatch: attempt ``k``
        waits ``base * 2**k`` (capped at ``redispatch_backoff_max_s``)
        plus seeded jitter, so a dying pool is not hammered with
        immediate retries.  ``0`` (default) keeps the PR-6 immediate
        re-dispatch.
    respawn_backoff_base_s / respawn_backoff_max_s:
        Exponential backoff (plus seeded jitter) between *failed* respawn
        attempts of one worker slot.
    max_respawn_failures:
        Circuit breaker: after this many consecutive respawn failures the
        slot's breaker opens and respawning stops (capacity stays
        degraded, counted in metrics) instead of respawn-storming.
    shm_integrity:
        CRC32 per shm slot (process-worker rings and pipeline stage
        rings): computed into a slot header at write, verified on read.
        A mismatch is classified as a *corrupt batch* — re-dispatched
        under the retry budget without killing the worker.  Off by
        default (zero extra bytes or work on the hot path).
    shed_alive_fraction:
        Graceful degradation trigger: shed when the alive fraction of the
        non-retired pool drops *below* this (e.g. ``0.5``).  ``None``
        disables the alive-fraction trigger.
    shed_timeout_threshold / shed_timeout_window_s:
        Second trigger: shed while at least this many dispatch timeouts
        landed within the trailing window.  ``None`` disables it.
    shed_classes:
        Priority classes shed while degraded (fast
        :class:`ServiceDegradedError` rejection at admission, counted in
        metrics).  Default: the laxest configured class (largest
        ``max_wait_ms``) — the lowest SLO tier — or the default class
        when no classes are configured.
    faults:
        Optional :class:`repro.faults.FaultSpec` installing the
        deterministic chaos injector into this service and every worker
        process it spawns.  ``None`` (default; production) leaves every
        injection site a no-op.
    trace_sample_rate:
        Per-request probability (``0..1``) of recording a full distributed
        span tree — queue wait, batch formation, dispatch, worker/stage
        forwards, per-layer DAC/crossbar/ADC — for that request
        (:mod:`repro.obs`).  Sampling is seeded from ``context.seed`` so
        traced runs are reproducible, and it never touches the numpy RNG
        streams, so sampled serving stays bit-identical to untraced
        serving.  ``0`` (default) disables tracing; the remaining cost is
        one attribute check per request.
    trace_max_spans:
        Bound on retained spans; spans past it are counted as dropped
        instead of growing memory without limit.
    """

    backend: Union[str, ExecutionBackend] = "ideal"
    backend_options: Dict = dataclasses.field(default_factory=dict)
    max_batch: int = 64
    max_wait_ms: float = 2.0
    num_workers: int = 1
    workers: str = "thread"
    transport: str = "shm"
    transport_slots: int = 4
    pipeline_stages: int = 1
    pipeline_probe: Optional[np.ndarray] = None
    macro_budget: Optional[int] = None
    macros_per_worker: int = 8
    policy: str = "round_robin"
    queue_capacity: Optional[int] = None
    context: ExecutionContext = dataclasses.field(default_factory=ExecutionContext)
    estimate_energy: bool = True
    retry_policy: str = "redispatch"
    max_retries: int = 2
    respawn: bool = True
    recovery_wait_s: float = 30.0
    plan_cache: Optional[str] = None
    priority_classes: Optional[Dict[str, float]] = None
    autoscale: bool = False
    min_workers: Optional[int] = None
    max_workers: Optional[int] = None
    autoscale_interval_ms: float = 20.0
    scale_down_idle_ticks: int = 5
    dispatch_timeout_s: Optional[float] = None
    class_dispatch_timeout_s: Optional[Dict[str, float]] = None
    heartbeat_timeout_s: Optional[float] = None
    heartbeat_interval_s: float = 0.05
    redispatch_backoff_base_s: float = 0.0
    redispatch_backoff_max_s: float = 1.0
    respawn_backoff_base_s: float = 0.05
    respawn_backoff_max_s: float = 5.0
    max_respawn_failures: int = 3
    shm_integrity: bool = False
    shed_alive_fraction: Optional[float] = None
    shed_timeout_threshold: Optional[int] = None
    shed_timeout_window_s: float = 1.0
    shed_classes: Optional[List[str]] = None
    faults: Optional[FaultSpec] = None
    trace_sample_rate: float = 0.0
    trace_max_spans: int = 200_000


class InferenceService:
    """Dynamic-batching inference service over the execution-backend registry."""

    def __init__(self, model: Model, config: Optional[ServeConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else ServeConfig()
        if isinstance(self.config.backend, ExecutionBackend) and self.config.num_workers > 1:
            raise ValueError(
                "a backend instance cannot be shared across workers; "
                "pass a registered backend name for num_workers > 1"
            )
        if self.config.workers not in ("thread", "process"):
            raise ValueError(
                f"unknown worker mode {self.config.workers!r}; "
                "choose 'thread' or 'process'"
            )
        if self.config.transport not in ("shm", "pickle"):
            raise ValueError(
                f"unknown process transport {self.config.transport!r}; "
                "choose 'shm' or 'pickle'"
            )
        if self.config.pipeline_stages < 1:
            raise ValueError("pipeline_stages must be >= 1")
        if (self.config.macro_budget is not None
                and self.config.macro_budget < 1):
            raise ValueError("macro_budget must be >= 1 (or None)")
        if self.config.retry_policy not in ("redispatch", "fail_fast"):
            raise ValueError(
                f"unknown retry policy {self.config.retry_policy!r}; "
                "choose 'redispatch' or 'fail_fast'"
            )
        if self.config.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        for name, wait_ms in (self.config.priority_classes or {}).items():
            if wait_ms < 0:
                raise ValueError(
                    f"priority class {name!r} max_wait_ms must be >= 0")
        low = (self.config.min_workers if self.config.min_workers is not None
               else self.config.num_workers)
        high = (self.config.max_workers if self.config.max_workers is not None
                else self.config.num_workers)
        if self.config.autoscale and (low < 1 or high < low):
            raise ValueError(
                f"autoscale bounds min_workers={low}, max_workers={high} "
                "must satisfy 1 <= min <= max"
            )
        if (self.config.dispatch_timeout_s is not None
                and self.config.dispatch_timeout_s <= 0):
            raise ValueError("dispatch_timeout_s must be > 0 (or None)")
        for name, timeout_s in (self.config.class_dispatch_timeout_s or {}).items():
            if timeout_s is not None and timeout_s <= 0:
                raise ValueError(
                    f"class {name!r} dispatch timeout must be > 0")
        if (self.config.heartbeat_timeout_s is not None
                and self.config.heartbeat_timeout_s <= 0):
            raise ValueError("heartbeat_timeout_s must be > 0 (or None)")
        if self.config.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")
        if (self.config.redispatch_backoff_base_s < 0
                or self.config.respawn_backoff_base_s < 0):
            raise ValueError("backoff bases must be >= 0")
        if self.config.max_respawn_failures < 1:
            raise ValueError("max_respawn_failures must be >= 1")
        if (self.config.shed_alive_fraction is not None
                and not 0.0 < self.config.shed_alive_fraction <= 1.0):
            raise ValueError("shed_alive_fraction must be in (0, 1]")
        if (self.config.shed_timeout_threshold is not None
                and self.config.shed_timeout_threshold < 1):
            raise ValueError("shed_timeout_threshold must be >= 1 (or None)")
        known_classes = set(self.config.priority_classes or {})
        known_classes.add(DEFAULT_PRIORITY)
        for name in self.config.shed_classes or []:
            if name not in known_classes:
                raise ValueError(
                    f"shed class {name!r} is not a configured priority class")
        self.metrics = ServiceMetrics(
            energy_per_conversion_j=energy_per_conversion(self.config.context.macro_config)
        )
        # The Tracer validates trace_sample_rate itself; seeding from the
        # execution context's seed (its own random.Random, never the numpy
        # streams) makes which requests get traced reproducible without
        # perturbing served numerics.
        self.tracer = Tracer(
            sample_rate=self.config.trace_sample_rate,
            seed=getattr(self.config.context, "seed", 0),
            max_spans=self.config.trace_max_spans,
        )
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[DynamicBatcher] = None
        self._worker_states: List[WorkerState] = []
        self._workers: List[Optional[Union[_ThreadWorker, _ProcessWorker,
                                           _PipelineWorker]]] = []
        self._worker_queues: List[asyncio.Queue] = []
        self._tasks: List[asyncio.Task] = []
        self._loop_tasks: Dict[int, asyncio.Task] = {}
        self._scheduler = None
        self._conversions_per_sample: Optional[int] = None
        self._outstanding = 0
        self._started = False
        self._accepting = False
        self._stopping = False
        self._worker_mode = ("pipeline" if self.config.pipeline_stages > 1
                             else self.config.workers)
        self._plan_cache: Optional[PlanCache] = None
        self._plan_payload: Optional[bytes] = None
        self._pipeline_partition = None
        self._respawn_tasks: set = set()
        self._autoscale_task: Optional[asyncio.Task] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self._signature: Optional[Tuple[int, ...]] = None
        self._degraded_since: Optional[float] = None
        # --- robustness state (fault injection, hangs, backoff, shedding) ---
        self._injector: Optional[FaultInjector] = None
        self._fault_spec_dict = (self.config.faults.to_dict()
                                 if self.config.faults is not None else None)
        self._timeouts_enabled = (
            self.config.dispatch_timeout_s is not None
            or bool(self.config.class_dispatch_timeout_s))
        self._shed_enabled = (
            self.config.shed_alive_fraction is not None
            or self.config.shed_timeout_threshold is not None)
        self._shed_classes = self._resolve_shed_classes()
        self._timeout_times: collections.deque = collections.deque()
        self._respawn_breaker_open: set = set()
        # Seeded apart from the numpy streams: jitter must never perturb
        # served numerics.
        self._backoff_rng = Random(
            f"serve-backoff:{getattr(self.config.context, 'seed', 0)}")
        self._heartbeat_seen: Dict[int, Tuple[object, Tuple, float]] = {}
        self._fault_report: Dict[str, Dict[str, int]] = {}

    def _resolve_shed_classes(self) -> frozenset:
        """Which priority classes degradation sheds (config or derived).

        Without an explicit list, the laxest configured class (largest
        flush budget — the lowest SLO tier) is shed; with no classes at
        all, everything is the default class and is sheddable.
        """
        config = self.config
        if config.shed_classes:
            return frozenset(config.shed_classes)
        classes = config.priority_classes
        if not classes:
            return frozenset((DEFAULT_PRIORITY,))
        laxest = max(classes.values())
        return frozenset(name for name, wait in classes.items()
                         if wait >= laxest)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Prepare every worker replica and start the serving tasks."""
        if self._started:
            raise RuntimeError("service already started")
        config = self.config
        # Rebuild all per-run state so a stopped service can start again:
        # queues from a previous run are bound to that run's event loop.
        self._queue = asyncio.Queue()
        class_wait_s = {name: wait_ms / 1e3
                        for name, wait_ms in (config.priority_classes or {}).items()}
        self._batcher = DynamicBatcher(self._queue, max_batch=config.max_batch,
                                       max_wait_s=config.max_wait_ms / 1e3,
                                       class_wait_s=class_wait_s)
        self._worker_queues = []
        self._workers = []
        self._outstanding = 0
        self._stopping = False
        self._plan_payload = None
        self._pipeline_partition = None
        self._respawn_tasks = set()
        self._degraded_since = None
        self._timeout_times = collections.deque()
        self._respawn_breaker_open = set()
        self._heartbeat_seen = {}
        if config.faults is not None:
            # Parent-side sites (shm request writes, plan-cache loads, the
            # respawn path) fire on this injector; worker processes install
            # their own copy from the shipped spec dict.
            self._injector = fault_injector.install(
                FaultInjector(config.faults))
        self._plan_cache = (PlanCache(config.plan_cache)
                            if config.plan_cache else None)
        # The admission signature locks from the calibration batch when one
        # is available, else from the first admitted request.
        self._signature = None
        calibration = config.context.calibration
        if calibration is not None:
            calibration = np.asarray(calibration)
            if calibration.ndim == 4:
                self._signature = tuple(int(d) for d in calibration.shape[1:])
        self._worker_states = build_worker_states(
            config.num_workers, macro_config=config.context.macro_config,
            macros_per_worker=config.macros_per_worker, mode=self._worker_mode,
        )
        self._scheduler = create_scheduler(config.policy, self._worker_states)
        try:
            for index in range(config.num_workers):
                worker = await self._build_worker()
                self._workers.append(worker)
                self._worker_queues.append(asyncio.Queue())
        except Exception:
            # A failed prepare mid-pool must not leave earlier workers
            # attached or the service half-initialised for a retry.
            for worker in self._workers:
                if worker is not None:
                    await worker.close()
            self._workers = []
            self._worker_queues = []
            self._worker_states = []
            self._scheduler = None
            self._queue = None
            self._batcher = None
            raise
        self._loop_tasks = {
            index: asyncio.create_task(self._worker_loop(index),
                                       name=f"serve-worker-{index}")
            for index in range(config.num_workers)
        }
        self._tasks = list(self._loop_tasks.values())
        self._tasks.append(
            asyncio.create_task(self._dispatch_loop(), name="serve-dispatch")
        )
        if config.autoscale:
            self._autoscale_task = asyncio.create_task(
                self._autoscale_loop(), name="serve-autoscale")
        if (config.heartbeat_timeout_s is not None
                and self._worker_mode in ("process", "pipeline")):
            self._watchdog_task = asyncio.create_task(
                self._watchdog_loop(), name="serve-watchdog")
        self._started = True
        self._accepting = True

    async def _build_runner(self) -> BatchRunner:
        """Prepare one replica runner (deepcopy + same seeded context).

        Each worker serves its own replica so concurrent forwards on
        different workers cannot race on shared layer state.  The replica
        recipe is identical for every worker and in both worker modes,
        which is what keeps process serving bit-identical to in-loop
        serving — and what lets one pickled plan payload serve every
        process replica (and the plan cache serve future starts).
        """
        config = self.config
        replica = copy.deepcopy(self.model)
        backend = (
            config.backend if isinstance(config.backend, ExecutionBackend)
            else create_backend(config.backend, **config.backend_options)
        )
        return await asyncio.to_thread(
            BatchRunner, replica, backend, context=config.context
        )

    async def _process_plan_payload(self) -> bytes:
        """The pickled plan shipped to process workers, cached per service.

        Resolution order: in-memory (already built this run) → on-disk
        plan cache (fingerprint hit skips compilation entirely) → compile
        a fresh replica, pickle it and persist it for the next start or
        respawn.
        """
        if self._plan_payload is not None:
            return self._plan_payload
        config = self.config
        # Backend *instances* carry arbitrary caller state the fingerprint
        # cannot see; only registry-name recipes are cacheable.
        cache = self._plan_cache if isinstance(config.backend, str) else None
        key = None
        claimed = False
        if cache is not None:
            key = await asyncio.to_thread(
                plan_fingerprint, self.model, config.backend,
                config.backend_options, config.context)
            payload = await self._load_cached_plan(cache, key)
            if payload is None:
                # Write-once guard: first contender claims the key and
                # compiles; the rest wait for its entry instead of
                # double-compiling the identical plan.
                claimed = await asyncio.to_thread(cache.claim, key)
                if not claimed:
                    payload = await asyncio.to_thread(cache.wait_for, key)
            if payload is not None:
                if config.macro_budget is not None:
                    # The budget guard normally runs on the freshly
                    # compiled plan; a hit skipped compilation, so count
                    # macros on an unpickled copy instead.
                    plan = await asyncio.to_thread(pickle.loads, payload)
                    self._enforce_plan_budget(plan)
                self._plan_payload = payload
                return payload
        try:
            runner = await self._build_runner()
            try:
                if config.macro_budget is not None:
                    await asyncio.to_thread(self._enforce_macro_budget, runner)
                payload = await asyncio.to_thread(pickle.dumps, runner.plan)
            finally:
                await asyncio.to_thread(runner.close)
            if cache is not None and key is not None:
                try:
                    await asyncio.to_thread(cache.store, key, payload)
                except OSError as exc:
                    warnings.warn(
                        f"plan cache write failed ({exc!r}); serving "
                        "without it", RuntimeWarning, stacklevel=2)
        finally:
            if claimed:
                await asyncio.to_thread(cache.release, key)
        self._plan_payload = payload
        return payload

    async def _load_cached_plan(self, cache: PlanCache,
                                key: str) -> Optional[bytes]:
        """One cache lookup, with the ``plan_cache.load`` injection site.

        A ``crash`` rule here makes the (re)spawn path fail — exercising
        respawn backoff and the circuit breaker; a ``corrupt`` rule (no
        mutable payload at this site) degrades the lookup to a miss.
        """
        corrupt = False
        if self._injector is not None:
            corrupt = self._injector.fire("plan_cache.load")
        payload = await asyncio.to_thread(cache.load, key)
        return None if corrupt else payload

    async def _partition_payloads(self):
        """The per-stage pipeline payloads, built once per service run.

        Every replica is the same seeded recipe, so one partition's pickled
        stage plans serve every pipeline worker — including respawns, which
        therefore never recompile or re-partition.
        """
        if self._pipeline_partition is not None:
            return self._pipeline_partition
        runner = await self._build_runner()
        try:
            partition = await asyncio.to_thread(self._build_partition, runner)
        finally:
            await asyncio.to_thread(runner.close)
        self._pipeline_partition = partition
        return partition

    async def _build_worker(self) -> Union["_ThreadWorker", "_ProcessWorker",
                                           "_PipelineWorker"]:
        """Build and start one worker of the configured substrate."""
        config = self.config
        heartbeat = (config.heartbeat_interval_s
                     if config.heartbeat_timeout_s is not None else None)
        if config.pipeline_stages > 1:
            partition = await self._partition_payloads()
            worker = _PipelineWorker(partition, max_batch=config.max_batch,
                                     slots=config.transport_slots,
                                     checksum=config.shm_integrity,
                                     fault_spec=self._fault_spec_dict,
                                     heartbeat_interval_s=heartbeat)
            try:
                await worker.start()
            except Exception:
                await worker.close()
                raise
            return worker
        if config.workers == "process":
            payload = await self._process_plan_payload()
            worker = _ProcessWorker(payload, transport=config.transport,
                                    max_batch=config.max_batch,
                                    slots=config.transport_slots,
                                    checksum=config.shm_integrity,
                                    fault_spec=self._fault_spec_dict,
                                    heartbeat_interval_s=heartbeat)
            try:
                await worker.start()
            except Exception:
                await worker.close()
                raise
            return worker
        runner = await self._build_runner()
        try:
            if config.macro_budget is not None:
                await asyncio.to_thread(self._enforce_macro_budget, runner)
        except Exception:
            await asyncio.to_thread(runner.close)
            raise
        return _ThreadWorker(runner)

    async def stop(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` serves everything already queued before shutting
        down; ``drain=False`` fails queued requests with
        :class:`ServiceClosedError`.
        """
        if not self._started:
            return
        self._accepting = False
        self._stopping = True
        first_error: Optional[BaseException] = None
        try:
            for attribute in ("_autoscale_task", "_watchdog_task"):
                task = getattr(self, attribute)
                if task is not None:
                    task.cancel()
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):  # noqa: BLE001
                        pass
                    setattr(self, attribute, None)
            # Let in-flight respawns finish (they check _stopping and tear
            # their worker back down) so no executor leaks past stop.
            if self._respawn_tasks:
                await asyncio.gather(*list(self._respawn_tasks),
                                     return_exceptions=True)
            if not drain:
                self._fail_queued(ServiceClosedError("service stopped"))
            await self._queue.put(CLOSE)
            # Tolerate dead tasks: shutdown must always release the workers
            # and close the runners, even if a serving task crashed.
            outcomes = await asyncio.gather(*self._tasks, return_exceptions=True)
            for outcome in outcomes:
                if isinstance(outcome, BaseException) and first_error is None:
                    first_error = outcome
        finally:
            self._tasks = []
            self._loop_tasks = {}
            for worker in self._workers:
                if worker is not None:
                    await worker.close()
            self._workers = []
            self._started = False
            self._stopping = False
            if self._injector is not None:
                # Parent-side fire counts survive stop for chaos summaries.
                self._fault_report = self._injector.report()
                if fault_injector.get_installed() is self._injector:
                    fault_injector.uninstall()
                self._injector = None
        if first_error is not None:
            # Cleanup succeeded; still surface the crash rather than hide it.
            raise first_error

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_nowait(self, images: np.ndarray,
                      priority: str = DEFAULT_PRIORITY
                      ) -> "asyncio.Future[np.ndarray]":
        """Enqueue one request; returns the future of its logits.

        ``images`` is one sample (``(C, H, W)``) or one stacked multi-sample
        request (``(n, C, H, W)``); the future resolves to logits with the
        matching leading dimension.  ``priority`` names an SLO class from
        ``config.priority_classes`` (or the default class).

        Malformed requests are rejected *here*, synchronously: shape rank,
        sample shape against the service input signature (locked from the
        calibration batch, else from the first admitted request) and
        non-numeric dtypes.  Past admission a request enters the shared
        batching pipeline, where a bad payload would fail every co-batched
        client's request along with its own.
        """
        if not self._started or not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        classes = self.config.priority_classes
        if (classes is not None and priority != DEFAULT_PRIORITY
                and priority not in classes):
            raise ValueError(
                f"unknown priority class {priority!r}; configured classes: "
                f"{', '.join(sorted(classes))} (or {DEFAULT_PRIORITY!r})"
            )
        array = np.asarray(images, dtype=np.float64)
        if array.ndim == 3:
            array = array[None, ...]
        elif array.ndim != 4:
            raise ValueError(
                f"request must be one (C, H, W) sample or a stacked "
                f"(n, C, H, W) batch; got shape {array.shape}"
            )
        sample_shape = tuple(int(d) for d in array.shape[1:])
        if self._signature is None:
            self._signature = sample_shape
        elif sample_shape != self._signature:
            raise ValueError(
                f"request sample shape {sample_shape} does not match the "
                f"service input signature {self._signature}; rejected at "
                "admission so one malformed request cannot fail its "
                "co-batched clients"
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[np.ndarray]" = loop.create_future()
        now = loop.time()
        if self._shed_enabled and priority in self._shed_classes:
            reason = self._shedding_now(now)
            if reason is not None:
                # Graceful degradation: a struggling pool sheds its
                # lowest-priority classes at admission so stricter SLO
                # classes keep their capacity.
                self.metrics.record_shed()
                self.tracer.event("shed", priority=priority, reason=reason)
                future.set_exception(
                    ServiceDegradedError(
                        f"service degraded ({reason}); shedding "
                        f"{priority!r}-class requests"))
                return future
        capacity = self.config.queue_capacity
        if capacity is not None and self._outstanding >= capacity:
            self.metrics.record_drop()
            future.set_exception(
                ServiceOverloadedError(
                    f"service backlog full ({self._outstanding} outstanding "
                    f"requests, capacity {capacity})"
                )
            )
            return future
        self._outstanding += 1
        request = Request(images=array, future=future, arrival=now,
                          priority=priority)
        if self.tracer.enabled:
            request.trace = self.tracer.maybe_start_request(
                request.request_id, priority, request.rows)
        self._queue.put_nowait(request)
        self.metrics.record_arrival(now, self._queue.qsize())
        return future

    async def submit(self, images: np.ndarray,
                     priority: str = DEFAULT_PRIORITY) -> np.ndarray:
        """Submit one request and await its logits."""
        return await self.submit_nowait(images, priority=priority)

    async def submit_many(self, images: np.ndarray) -> np.ndarray:
        """Submit ``images`` as contiguous ``max_batch``-row slice requests.

        A k-row submission used to create one request (and one future) per
        sample — thousands of queue entries and gather slots that the
        batcher immediately re-coalesced into ``max_batch``-row batches.
        Submitting the same contiguous slices directly enqueues
        ``ceil(k / max_batch)`` stacked requests instead: identical
        execution batches (each slice is exactly one flush) and identical
        FIFO carry semantics, with O(1) futures per executed batch.  Note
        a slice counts as one request toward ``queue_capacity`` and in the
        request-level metrics.
        """
        array = np.asarray(images, dtype=np.float64)
        step = max(self.config.max_batch, 1)
        futures = [self.submit_nowait(array[start:start + step])
                   for start in range(0, array.shape[0], step)]
        results = await asyncio.gather(*futures)
        if not results:
            # Mirror run_model's empty-input behaviour: (0, 0) logits.
            return np.zeros((0, 0), dtype=np.float64)
        return np.concatenate(results, axis=0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build_partition(self, runner: BatchRunner):
        """Cut a prepared replica plan into pipeline stage payloads."""
        # Imported lazily: repro.shard pulls in the pipeline machinery only
        # pipeline-mode services need (and avoids an import cycle through
        # repro.serve.shm).
        from repro.shard.partition import build_stage_payloads

        config = self.config
        probe = (config.pipeline_probe if config.pipeline_probe is not None
                 else config.context.calibration)
        return build_stage_payloads(
            runner.plan, config.pipeline_stages, probe=probe,
            max_macros_per_stage=config.macro_budget)

    def _enforce_macro_budget(self, runner: BatchRunner) -> None:
        """Reject a single-worker replica exceeding the crossbar budget."""
        self._enforce_plan_budget(runner.plan)

    def _enforce_plan_budget(self, plan) -> None:
        from repro.shard.partition import CapacityError, count_plan_macros

        used = count_plan_macros(plan)
        budget = self.config.macro_budget
        if used > budget:
            raise CapacityError(
                f"model maps onto {used} macros but the worker crossbar "
                f"budget is {budget}; shard it with "
                f"ServeConfig(pipeline_stages>= {-(-used // budget)})"
            )

    def _ensure_conversion_estimate(self, batch: List[Request]) -> None:
        if self._conversions_per_sample is not None:
            return
        if not self.config.estimate_energy:
            self._conversions_per_sample = 0
            return
        # Probe on the caller's model: replicas may be mid-forward in worker
        # threads, but the original stays digital and idle while serving.
        self._conversions_per_sample = estimate_conversions_per_sample(
            self.model, batch[0].images[0],
            macro_config=self.config.context.macro_config,
            max_mapped_layers=self.config.context.max_mapped_layers,
        )

    def _fail_queued(self, error: BaseException) -> None:
        """Fail every request still sitting in the request queue."""
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is not CLOSE:
                fail_requests([item], error)
                self._finish_request_traces([item], error=error)
                self._outstanding -= 1

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _trace_batch_formed(self, batch: List[Request]) -> None:
        """Close queue-wait spans; open the primary trace's batch span.

        The first traced request of a batch is its *primary*: batch- and
        dispatch-level spans attach to that one trace (a batch is one
        execution, not one per client), and every other traced request in
        the batch records the primary's trace id for cross-reference.
        """
        if not self.tracer.enabled:
            return
        traced = [request for request in batch if request.trace is not None]
        if not traced:
            return
        now = self.tracer.clock()
        for request in traced:
            self.tracer.end(request.trace.queue_span, now)
        primary = traced[0].trace
        primary.batch_span = self.tracer.begin(
            "batch", category="batch", trace_id=primary.trace_id,
            parent=primary.root, start_s=now,
            rows=sum(request.rows for request in batch),
            requests=len(batch))
        for other in traced[1:]:
            other.trace.root.args["batched_into"] = primary.trace_id

    def _batch_primary_trace(self, batch: List[Request]
                             ) -> Optional[RequestTrace]:
        """The batch's primary trace handle (first traced request), if any."""
        if not self.tracer.enabled:
            return None
        for request in batch:
            if request.trace is not None:
                return request.trace
        return None

    def _finish_request_traces(self, batch: List[Request],
                               error: Optional[BaseException] = None) -> None:
        """End every span of the batch's traced requests (success or failure).

        Idempotent per span, so a request finished here after its batch
        span closed normally only picks up whatever is still open — which
        is what keeps failure paths (admission races, retries exhausted,
        drain) from leaking unclosed spans as orphans.
        """
        if not self.tracer.enabled:
            return
        now = self.tracer.clock()
        outcome = {} if error is None else {"error": repr(error)}
        for request in batch:
            trace = request.trace
            if trace is None:
                continue
            self.tracer.end(trace.queue_span, now)
            self.tracer.end(trace.batch_span, now, **outcome)
            self.tracer.end(trace.root, now, **outcome)

    async def _dispatch_loop(self) -> None:
        try:
            while True:
                try:
                    batch = await self._batcher.next_batch()
                except Exception as exc:  # noqa: BLE001 — defense in depth
                    # A batcher failure must not wedge the service with
                    # accepted-but-undispatchable requests.
                    self._fail_queued(exc)
                    break
                if batch is None:
                    break
                self._trace_batch_formed(batch)
                if self._conversions_per_sample is None:
                    try:
                        # Off the event loop: the probe runs a real forward,
                        # and arrivals must keep flowing while it does.
                        await asyncio.to_thread(self._ensure_conversion_estimate,
                                                batch)
                    except Exception:
                        # Energy estimation is best-effort; never fail
                        # traffic over it.
                        self._conversions_per_sample = 0
                try:
                    rows = sum(request.rows for request in batch)
                    estimate = rows * self._conversions_per_sample
                    worker = await self._place_batch(rows)
                    worker.accelerator.begin_inference(estimate)
                    self.metrics.record_dispatch(self._queue.qsize())
                    await self._worker_queues[worker.index].put(
                        (batch, estimate, 0))
                except Exception as exc:  # noqa: BLE001 — fail, don't hang
                    fail_requests(batch, exc)
                    self._finish_request_traces(batch, error=exc)
                    self._outstanding -= len(batch)
        finally:
            # Always broadcast shutdown, even if dispatch died: workers must
            # never be left blocking on their queues.
            for queue in self._worker_queues:
                queue.put_nowait(None)

    async def _worker_loop(self, index: int) -> None:
        """Pump one worker's queue.

        Ordinary workers serve one batch at a time.  A worker advertising
        ``max_inflight > 1`` (the pipeline workers) is pumped with that many
        concurrent batch tasks — stages overlap across batches, which is
        the pipeline's throughput win; the worker itself serialises
        pipeline *entry* so batch order (and with it analog bit identity)
        is preserved.
        """
        queue = self._worker_queues[index]
        state = self._worker_states[index]
        limit = max(int(getattr(self._workers[index], "max_inflight", 1)), 1)
        semaphore = asyncio.Semaphore(limit)
        pending: set = set()
        while True:
            item = await queue.get()
            if item is None:
                break
            # Fetched per item: a respawn replaces the worker object at
            # this index, and batches queued before (or during) the death
            # must run on whatever currently backs the slot.
            worker = self._workers[index]
            await semaphore.acquire()
            if limit == 1:
                try:
                    await self._serve_batch(worker, state, item)
                finally:
                    semaphore.release()
            else:
                task = asyncio.create_task(
                    self._serve_batch_release(worker, state, item, semaphore))
                pending.add(task)
                task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*pending)

    async def _serve_batch_release(self, worker, state, item,
                                   semaphore: asyncio.Semaphore) -> None:
        try:
            await self._serve_batch(worker, state, item)
        finally:
            semaphore.release()

    async def _serve_batch(self, worker, state, item) -> None:
        loop = asyncio.get_running_loop()
        batch, estimate, retries = item
        if not state.alive and not state.retired and not self._stopping:
            # Queued before the worker's death was noticed: skip the doomed
            # forward (the executor is closed or closing) and go straight
            # to the retry path.  Retired workers still drain their queue.
            state.accelerator.cancel_inference(estimate)
            await self._retry_or_fail(
                batch, retries,
                RuntimeError(f"worker {state.index} died before serving "
                             "the batch"))
            return
        primary = self._batch_primary_trace(batch)
        dispatch_span = None
        try:
            inputs = stack_requests(batch)
            if primary is not None:
                dispatch_span = self.tracer.begin(
                    "dispatch", category="dispatch",
                    trace_id=primary.trace_id,
                    parent=primary.batch_span or primary.root,
                    worker=state.index, mode=state.mode, attempt=retries)
            timeout_s = self._dispatch_timeout_for(batch)
            forward = worker.forward(inputs, traced=dispatch_span is not None)
            if timeout_s is not None:
                logits, measured, remote = await asyncio.wait_for(
                    forward, timeout=timeout_s)
            else:
                logits, measured, remote = await forward
            now = loop.time()
            if dispatch_span is not None:
                dispatch_end = self.tracer.clock()
                self.tracer.end(dispatch_span, dispatch_end)
                if remote:
                    # Re-anchor the worker-clock spans inside the observed
                    # dispatch window — the tree stays connected without a
                    # shared clock epoch.
                    self.tracer.attach_remote(
                        remote, parent=dispatch_span,
                        start_s=dispatch_span.start_s, end_s=dispatch_end)
            # Scatter first: it validates the worker returned one logits
            # row per batched sample row before any future resolves.
            scatter_results(batch, logits)
            # Retire the booked estimate from the in-flight gauge but
            # credit the measured cost, so neither an optimistic nor a
            # pessimistic estimate leaves phantom load behind.
            state.accelerator.complete_inference(
                measured if measured else estimate, booked=estimate)
            state.transport_s = getattr(worker, "transport_s", 0.0)
            state.stage_stats = getattr(worker, "stage_stats", None) or []
            self._outstanding -= len(batch)
            self.metrics.record_batch(
                rows=int(inputs.shape[0]),
                request_latencies_s=[now - request.arrival
                                     for request in batch],
                now=now,
                conversions=measured,
                estimated_conversions=0.0 if measured else float(estimate),
                request_classes=[request.priority for request in batch],
            )
            self._finish_request_traces(batch)
        except asyncio.TimeoutError:
            # Dispatch deadline: the forward outlived its SLO budget — a
            # wedged worker (injected hang, livelock) that never raises.
            # Classified exactly like a death, plus a hard kill() first:
            # executor shutdown would otherwise join the hung process
            # forever.  Must precede the generic handler — on Python 3.11+
            # asyncio.TimeoutError is the builtin TimeoutError.
            if dispatch_span is not None:
                self.tracer.end(dispatch_span, error="dispatch_timeout")
            state.accelerator.cancel_inference(estimate)
            exc = WorkerHungError(
                f"worker {state.index} exceeded its "
                f"{self._dispatch_timeout_for(batch)}s dispatch deadline")
            self.metrics.record_dispatch_timeout()
            self._timeout_times.append(loop.time())
            self.tracer.event("dispatch_timeout", worker=state.index,
                              mode=state.mode, attempt=retries)
            if not self._stopping:
                self._note_worker_death(state, exc, kill=True)
                await self._retry_or_fail(batch, retries, exc)
                return
            fail_requests(batch, exc)
            self._finish_request_traces(batch, error=exc)
            self._outstanding -= len(batch)
        except Exception as exc:  # noqa: BLE001 — classify, retry or fail
            if dispatch_span is not None:
                self.tracer.end(dispatch_span, error=repr(exc))
            state.accelerator.cancel_inference(estimate)
            if (self._is_corruption(exc) and state.alive
                    and not state.retired and not self._stopping):
                # A CRC check caught slot bit-rot: the payload is bad but
                # the worker is healthy, so the batch is re-dispatched
                # without killing anything.
                self.metrics.record_corruption()
                self.tracer.event("slot_corruption", worker=state.index,
                                  mode=state.mode, attempt=retries,
                                  error=repr(exc))
                await self._retry_or_fail(batch, retries, exc)
                return
            # A fault is worker-level either by type (BrokenExecutor,
            # StageDiedError) or by correlation: the worker was marked
            # dead while this batch raced its teardown, so errors like
            # "cannot schedule new futures after shutdown" still count.
            death = (self._is_worker_death(exc)
                     or (not state.alive and not state.retired))
            if death and not self._stopping:
                # Worker-level fault (process exit, broken shm transport,
                # dead pipeline stage): the batch itself is fine, so it is
                # re-dispatchable.  Mark the worker down and respawn it.
                self._note_worker_death(state, exc)
                await self._retry_or_fail(batch, retries, exc)
                return
            # Request-level failure (stacking errors, forward exceptions,
            # scatter row mismatch): it would fail the same way on any
            # replica, so it propagates to exactly this batch's clients.
            # The worker itself survives any single bad batch.
            fail_requests(batch, exc)
            self._finish_request_traces(batch, error=exc)
            self._outstanding -= len(batch)

    async def _retry_or_fail(self, batch: List[Request], retries: int,
                             exc: BaseException) -> None:
        """Re-dispatch a dead worker's batch, or fail it to its clients.

        Retries are bounded by ``max_retries`` and disabled entirely under
        ``retry_policy="fail_fast"`` (the pre-fault-tolerance behaviour,
        for noise-stream-sensitive runs).  With
        ``redispatch_backoff_base_s > 0`` each attempt waits
        ``base * 2**(attempt-1)`` (capped by ``redispatch_backoff_max_s``)
        plus up to 25% seeded jitter before re-entering placement, so a
        flapping pool is not hammered by its own retry traffic.
        """
        if (self.config.retry_policy == "redispatch"
                and retries < self.config.max_retries
                and not self._stopping):
            base = self.config.redispatch_backoff_base_s
            if base > 0.0 and retries >= 0:
                wait_s = min(base * (2.0 ** retries),
                             self.config.redispatch_backoff_max_s)
                wait_s *= 1.0 + 0.25 * self._backoff_rng.random()
                self.metrics.record_backoff(wait_s)
                self.tracer.event("redispatch_backoff", attempt=retries + 1,
                                  wait_s=round(wait_s, 6))
                await asyncio.sleep(wait_s)
            try:
                await self._redispatch(batch, retries + 1)
                return
            except Exception as redispatch_exc:  # noqa: BLE001
                exc = redispatch_exc
        fail_requests(batch, exc)
        self._finish_request_traces(batch, error=exc)
        self._outstanding -= len(batch)

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def _is_worker_death(self, exc: BaseException) -> bool:
        """Whether ``exc`` means the *worker* died rather than the batch."""
        if isinstance(exc, concurrent.futures.BrokenExecutor):
            return True  # process worker gone (BrokenProcessPool et al.)
        try:
            from repro.shard.pipeline import StageDiedError
        except ImportError:  # pragma: no cover - shard always ships
            return False
        return isinstance(exc, StageDiedError)

    def _is_corruption(self, exc: BaseException) -> bool:
        """Whether ``exc`` is a transport-integrity (CRC) failure.

        Corruption means the *payload* went bad in flight, not the worker:
        the batch is re-dispatched but nothing is killed or respawned.
        """
        if isinstance(exc, IntegrityError):
            return True
        try:
            from repro.shard.pipeline import StageCorruptionError
        except ImportError:  # pragma: no cover - shard always ships
            return False
        return isinstance(exc, StageCorruptionError)

    def _dispatch_timeout_for(self, batch: List[Request]) -> Optional[float]:
        """The dispatch deadline for ``batch`` (tightest member's class).

        A batch can mix SLO classes; the strictest per-class override in
        it wins, falling back to the global ``dispatch_timeout_s``.
        """
        if not self._timeouts_enabled:
            return None
        config = self.config
        timeout = config.dispatch_timeout_s
        overrides = config.class_dispatch_timeout_s
        if overrides:
            for request in batch:
                override = overrides.get(request.priority)
                if override is not None and (timeout is None
                                             or override < timeout):
                    timeout = override
        return timeout

    def _note_worker_death(self, state: WorkerState, exc: BaseException,
                           kill: bool = False) -> None:
        """Mark a worker dead once and kick off its background recovery.

        ``kill=True`` (hung workers: dispatch timeouts, heartbeat trips)
        SIGKILLs the worker's processes before teardown — a wedged process
        never exits on its own, and a plain executor shutdown would join
        it forever.
        """
        if not state.alive or state.retired or self._stopping:
            return
        state.alive = False
        self.metrics.record_worker_death()
        self.tracer.event("worker_death", worker=state.index,
                          mode=state.mode, error=repr(exc))
        if self._degraded_since is None:
            self._degraded_since = asyncio.get_running_loop().time()
        dead = self._workers[state.index]
        task = asyncio.create_task(
            self._recover_worker(state.index, dead, kill_first=kill),
            name=f"serve-respawn-{state.index}")
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    async def _recover_worker(self, index: int, dead_worker,
                              kill_first: bool = False) -> None:
        """Release a dead worker's resources and (optionally) respawn it.

        Closing the dead worker first unlinks its shared-memory segments
        even mid-crash (the parent owns them).  The replacement is built
        from the cached plan payload — the on-disk cache when configured,
        the in-memory copy otherwise — so respawn never recompiles.

        Respawn attempts retry with exponential backoff (seeded jitter)
        up to ``max_respawn_failures`` times; exhausting them opens this
        slot's circuit breaker — capacity stays degraded and no further
        respawns are attempted for the slot, so a poisoned spawn path
        (e.g. an injected ``plan_cache.load`` crash) cannot spin hot.
        """
        if kill_first and dead_worker is not None:
            try:
                await asyncio.to_thread(dead_worker.kill)
            except Exception:  # noqa: BLE001 — already half-dead
                pass
        try:
            await dead_worker.close()
        except Exception:  # noqa: BLE001 — it is already dead
            pass
        if not self.config.respawn or self._stopping:
            return
        if index in self._respawn_breaker_open:
            return
        config = self.config
        failures = 0
        while not self._stopping:
            try:
                if self._injector is not None:
                    self._injector.fire("respawn")
                worker = await self._build_worker()
                break
            except Exception as exc:  # noqa: BLE001 — count and back off
                failures += 1
                self.metrics.record_respawn_failure()
                self.tracer.event("respawn_failure", worker=index,
                                  attempt=failures, error=repr(exc))
                if failures >= config.max_respawn_failures:
                    self._respawn_breaker_open.add(index)
                    self.metrics.record_breaker_trip()
                    self.tracer.event("respawn_breaker_open", worker=index)
                    warnings.warn(
                        f"worker {index} respawn failed {failures} times "
                        f"(last: {exc!r}); circuit breaker open, pool "
                        "capacity stays degraded",
                        RuntimeWarning, stacklevel=2)
                    return
                wait_s = min(
                    config.respawn_backoff_base_s * (2.0 ** (failures - 1)),
                    config.respawn_backoff_max_s)
                wait_s *= 1.0 + 0.25 * self._backoff_rng.random()
                if wait_s > 0:
                    self.metrics.record_backoff(wait_s)
                    await asyncio.sleep(wait_s)
        else:
            return
        if self._stopping:
            await worker.close()
            return
        self._workers[index] = worker
        self._worker_states[index].alive = True
        self.metrics.record_respawn()
        self.tracer.event("worker_respawn", worker=index)
        if self._degraded_since is not None and self.pool_recovered():
            loop = asyncio.get_running_loop()
            self.metrics.record_recovery(loop.time() - self._degraded_since)
            self._degraded_since = None

    async def _watchdog_loop(self) -> None:
        """Trip hung workers whose heartbeat counters stop advancing.

        Each process/pipeline worker runs a beat thread bumping a counter
        in a parent-owned shm ring.  This loop samples every alive
        worker's counters; when none of them changed for
        ``heartbeat_timeout_s`` the process is frozen at the OS level
        (SIGSTOP, pathological GC, a crashed beat thread) and is killed
        and respawned.  An injected ``hang`` (a sleeping forward) keeps
        beating — the *dispatch deadline* owns that case; the watchdog
        owns true freezes that a deadline alone cannot distinguish from
        slow work.
        """
        timeout_s = self.config.heartbeat_timeout_s
        interval = max(self.config.heartbeat_interval_s, 0.01)
        while not self._stopping:
            await asyncio.sleep(interval)
            if self._stopping or not self._started:
                return
            loop = asyncio.get_running_loop()
            now = loop.time()
            for state in list(self._worker_states):
                if not state.alive or state.retired:
                    self._heartbeat_seen.pop(state.index, None)
                    continue
                worker = (self._workers[state.index]
                          if state.index < len(self._workers) else None)
                if worker is None:
                    continue
                counts = worker.heartbeat_counts()
                if counts is None:
                    continue  # ring degraded at spawn: watchdog blind here
                seen = self._heartbeat_seen.get(state.index)
                if (seen is None or seen[0] is not worker
                        or seen[1] != counts):
                    self._heartbeat_seen[state.index] = (worker, counts, now)
                    continue
                if now - seen[2] >= timeout_s:
                    self._heartbeat_seen.pop(state.index, None)
                    self.metrics.record_heartbeat_trip()
                    self._timeout_times.append(now)
                    self.tracer.event("heartbeat_trip", worker=state.index,
                                      mode=state.mode,
                                      stalled_s=round(now - seen[2], 3))
                    self._note_worker_death(
                        state,
                        WorkerHungError(
                            f"worker {state.index} heartbeat stalled for "
                            f"{now - seen[2]:.2f}s"),
                        kill=True)

    def _shedding_now(self, now: float) -> Optional[str]:
        """The active degradation reason, or None when admitting normally.

        Sheds when the alive fraction of the pool dropped below
        ``shed_alive_fraction`` or when ``shed_timeout_threshold`` dispatch
        timeouts / heartbeat trips landed inside the sliding
        ``shed_timeout_window_s``.
        """
        config = self.config
        if config.shed_alive_fraction is not None and self._worker_states:
            states = [s for s in self._worker_states if not s.retired]
            if states:
                alive = sum(1 for s in states if s.alive)
                if alive / len(states) < config.shed_alive_fraction:
                    return (f"alive fraction {alive}/{len(states)} below "
                            f"{config.shed_alive_fraction}")
        if config.shed_timeout_threshold is not None:
            horizon = now - config.shed_timeout_window_s
            times = self._timeout_times
            while times and times[0] < horizon:
                times.popleft()
            if len(times) >= config.shed_timeout_threshold:
                return (f"{len(times)} timeouts in the last "
                        f"{config.shed_timeout_window_s}s")
        return None

    def fault_report(self) -> Dict[str, Dict[str, int]]:
        """Parent-side injected-fault fire counts per site and action.

        Live while serving; after :meth:`stop` the final counts survive
        (worker-process counts never leave their processes).  Empty when
        no faults are configured.
        """
        if self._injector is not None:
            return self._injector.report()
        return dict(self._fault_report)

    async def _place_batch(self, rows: int) -> WorkerState:
        """Select a worker, waiting out a total loss of capacity.

        When every worker is dead but a respawn is pending, placement
        waits (bounded by ``recovery_wait_s``) instead of failing the
        batch — the kill-storm contract is zero client-visible failures
        as long as the pool can recover.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.recovery_wait_s
        while True:
            try:
                return self._scheduler.select(rows)
            except NoAliveWorkersError:
                if (self._stopping or not self._respawn_tasks
                        or loop.time() >= deadline):
                    raise
                await asyncio.sleep(0.005)

    async def _redispatch(self, batch: List[Request], retries: int) -> None:
        """Re-queue a dead worker's batch onto a surviving replica.

        The retried batch re-enters placement exactly like a fresh one
        (occupancy booked on the new worker); on analog backends it will
        draw fresh noise there — see the module docstring and
        ``retry_policy``.
        """
        rows = sum(request.rows for request in batch)
        estimate = rows * (self._conversions_per_sample or 0)
        worker = await self._place_batch(rows)
        worker.accelerator.begin_inference(estimate)
        self.metrics.record_retry()
        primary = self._batch_primary_trace(batch)
        self.tracer.event(
            "retry", trace_id=primary.trace_id if primary else None,
            worker=worker.index, attempt=retries, rows=rows)
        await self._worker_queues[worker.index].put((batch, estimate, retries))

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------
    async def _autoscale_loop(self) -> None:
        """Spawn/retire replicas from queue depth and pool occupancy.

        Scale up when the outstanding backlog exceeds one full batch per
        alive worker (the pool cannot absorb the queue in a single round);
        scale down after ``scale_down_idle_ticks`` consecutive idle
        samples.  The pool stays within ``[min_workers, max_workers]``.
        """
        config = self.config
        interval = max(config.autoscale_interval_ms, 1.0) / 1e3
        high = (config.max_workers if config.max_workers is not None
                else config.num_workers)
        low = (config.min_workers if config.min_workers is not None
               else config.num_workers)
        idle_ticks = 0
        while not self._stopping:
            await asyncio.sleep(interval)
            if self._stopping or not self._started:
                return
            alive = [s for s in self._worker_states if s.alive]
            if not alive:
                continue  # recovery, not autoscaling, owns a dead pool
            backlog = self._outstanding
            if (len(alive) < high
                    and backlog > len(alive) * config.max_batch):
                idle_ticks = 0
                await self._scale_up()
                continue
            if backlog == 0:
                idle_ticks += 1
                if idle_ticks >= config.scale_down_idle_ticks and len(alive) > low:
                    idle_ticks = 0
                    self._scale_down()
            else:
                idle_ticks = 0

    async def _scale_up(self) -> None:
        """Append one replica to the pool (same recipe, plan-cache fast)."""
        config = self.config
        index = len(self._worker_states)
        state = build_worker_states(
            1, macro_config=config.context.macro_config,
            macros_per_worker=config.macros_per_worker,
            mode=self._worker_mode)[0]
        state.index = index
        state.alive = False  # not placeable until the worker is ready
        self._worker_states.append(state)
        self._worker_queues.append(asyncio.Queue())
        self._workers.append(None)
        try:
            worker = await self._build_worker()
        except Exception as exc:  # noqa: BLE001 — scaling is best-effort
            warnings.warn(f"autoscale spawn failed ({exc!r})",
                          RuntimeWarning, stacklevel=2)
            state.retired = True
            return
        if self._stopping:
            await worker.close()
            state.retired = True
            return
        self._workers[index] = worker
        loop_task = asyncio.create_task(self._worker_loop(index),
                                        name=f"serve-worker-{index}")
        self._loop_tasks[index] = loop_task
        self._tasks.append(loop_task)
        state.alive = True
        self.metrics.record_scale_event("up")

    def _scale_down(self) -> None:
        """Retire the newest spare replica once its queue drains."""
        candidates = [s for s in self._worker_states
                      if s.alive and not s.retired]
        state = candidates[-1]
        state.alive = False
        state.retired = True
        # The sentinel ends the worker loop after already-queued batches.
        self._worker_queues[state.index].put_nowait(None)
        worker = self._workers[state.index]
        loop_task = self._loop_tasks.get(state.index)
        self.metrics.record_scale_event("down")

        async def _close_after_drain() -> None:
            if loop_task is not None:
                await asyncio.shield(loop_task)
            if worker is not None:
                try:
                    await worker.close()
                except Exception:  # noqa: BLE001 — already torn down
                    pass

        task = asyncio.create_task(_close_after_drain(),
                                   name=f"serve-retire-{state.index}")
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def worker_snapshots(self) -> List[WorkerSnapshot]:
        """Per-worker load and occupancy summaries."""
        return [
            WorkerSnapshot(
                index=state.index,
                batches=state.assigned_batches,
                rows=state.assigned_rows,
                conversions=state.accelerator.completed_conversions,
                busy_seconds=state.accelerator.busy_seconds,
                mode=state.mode,
                transport_s=state.transport_s,
                alive=state.alive,
                retired=state.retired,
                stages=tuple(
                    StageOccupancy(
                        index=int(stage.get("stage", 0)),
                        layer_start=int(stage.get("layers", (0, 0))[0]),
                        layer_stop=int(stage.get("layers", (0, 0))[1]),
                        batches=int(stage.get("batches", 0)),
                        busy_s=float(stage.get("forward_s", 0.0)),
                        bubble_s=float(stage.get("bubble_s", 0.0)),
                        transport_s=float(stage.get("transport_s", 0.0)),
                        conversions=int(stage.get("conversions", 0)),
                    )
                    for stage in state.stage_stats
                ),
            )
            for state in self._worker_states
        ]

    def shm_segment_names(self) -> List[str]:
        """Shared-memory segments currently owned by the process workers.

        Used by the leak tests: every listed name must be gone from the
        system after :meth:`stop` / the workers' ``close``.
        """
        names: List[str] = []
        for worker in self._workers:
            if worker is not None:
                names.extend(getattr(worker, "shm_segment_names", []))
        return names

    def process_worker_pids(self) -> Dict[int, List[int]]:
        """PIDs of the live worker processes, keyed by worker index.

        Process workers report their single executor process; pipeline
        workers report every live stage process.  Thread workers (and dead
        or retired workers) are absent.  This is what the kill-storm
        loadgen scenario and the chaos tests aim their SIGKILLs at.
        """
        pids: Dict[int, List[int]] = {}
        for state in self._worker_states:
            if not state.alive:
                continue
            worker = self._workers[state.index]
            if isinstance(worker, _ProcessWorker):
                procs = list(getattr(worker.executor, "_processes", None) or {})
                if procs:
                    pids[state.index] = [int(pid) for pid in procs]
            elif isinstance(worker, _PipelineWorker):
                procs = [int(proc.pid) for proc in worker.pipeline._procs
                         if proc.is_alive()]
                if procs:
                    pids[state.index] = procs
        return pids

    def alive_worker_count(self) -> int:
        """Workers currently accepting placements."""
        return sum(1 for state in self._worker_states if state.alive)

    def transport_counters(self) -> Dict[str, int]:
        """Summed shm-ring writes/bytes across the live process workers.

        Empty-ringed workers (thread mode, pickle transport, pre-first-
        batch) contribute zeros; the exposition reports the totals as
        ``shm_*`` gauges.
        """
        totals = {"request_writes": 0, "request_bytes": 0,
                  "response_writes": 0, "response_bytes": 0}
        for worker in self._workers:
            channel = getattr(worker, "_channel", None)
            if channel is None:
                continue
            for key, value in channel.transport_counters().items():
                totals[key] += int(value)
        return totals

    def pool_recovered(self) -> bool:
        """Whether every non-retired worker slot is alive again."""
        return self._started and all(
            state.alive or state.retired for state in self._worker_states
        )

    async def stage_profiles(self) -> List[Dict[str, float]]:
        """Per-worker plan-stage (DAC/crossbar/ADC/digital) breakdowns.

        Collect before :meth:`stop` — thread workers read their runner's
        plan directly, process workers fetch the breakdown from the worker
        interpreter.
        """
        return [await worker.stage_profile() for worker in self._workers
                if worker is not None]

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Freeze the service metrics (latency, batching, energy, workers)."""
        if self._plan_cache is not None:
            self.metrics.plan_cache_hits = self._plan_cache.hits
            self.metrics.plan_cache_misses = self._plan_cache.misses
        return self.metrics.snapshot(self.worker_snapshots())


def serve_requests(model: Model, images: np.ndarray,
                   config: Optional[ServeConfig] = None
                   ) -> Tuple[np.ndarray, MetricsSnapshot]:
    """Serve every sample of ``images`` as its own request, synchronously.

    Convenience wrapper for tests and benchmarks: starts a service, submits
    all samples up front (so the batcher sees the full queue), awaits every
    response, drains and returns ``(logits, metrics_snapshot)`` with logits
    in submission order.
    """

    async def _run() -> Tuple[np.ndarray, MetricsSnapshot]:
        service = InferenceService(model, config)
        await service.start()
        try:
            logits = await service.submit_many(images)
            snapshot = service.metrics_snapshot()
        finally:
            await service.stop()
        return logits, snapshot

    return asyncio.run(_run())
