"""Benchmark: fault-tolerance contract under kill-storm and chaos drives.

The acceptance bars (hard asserts, so the gate never silently relaxes):

* with ``retry_policy="redispatch"`` a storm of SIGKILLs against random
  process workers during open-loop traffic causes **zero client-visible
  failures** — every dead worker's batches re-dispatch to survivors;
* the pool respawns back to its configured replica count within the
  recovery timeout;
* the respawned workers come from the plan-cache payload — the run
  records plan-cache hit/miss counters and asserts the storm itself
  compiled nothing (misses happen at most once, at cold start);
* a seeded *hang* injection (a wedged forward that never raises) trips
  the dispatch deadline, the hung worker is killed and respawned and the
  batch completes on a survivor — again with zero client failures;
* a seeded *corrupt-slot* injection is caught by the CRC32 integrity
  check and the batch re-dispatches without killing the healthy worker.

``BENCH_recovery.json`` records the client success ratios of all three
drives, the recovered pool fractions, the worst observed recovery time
and the retry / respawn / timeout / corruption counters;
``check_regression.py`` gates the ratios against the committed baseline.
All drives write through one ``write_bench_json`` call because it
replaces the whole file (last write wins).

Run with::

    pytest benchmarks/bench_recovery.py --benchmark-only -s
"""

import numpy as np
import pytest

from _timing import smoke_mode, write_bench_json
from repro.faults.injector import FaultRule, FaultSpec
from repro.nn import DatasetConfig, SGD, Sequential, SyntheticImageDataset, Trainer
from repro.nn.layers import Flatten, Linear, ReLU
from repro.serve import ServeConfig
from repro.serve.loadgen import run_loadtest

REQUESTS = 90 if smoke_mode() else 240
CHAOS_REQUESTS = 60 if smoke_mode() else 160
KILLS = 2 if smoke_mode() else 4
RATE_RPS = 600.0


@pytest.fixture(scope="module")
def workload():
    """A trained MLP plus request payloads for the chaos drive."""
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=8, image_size=12,
                                                  noise_sigma=0.3, seed=29))
    x_train, y_train, x_test, _ = dataset.train_test_split(192, 64)
    model = Sequential(
        Flatten(),
        Linear(432, 128, rng=np.random.default_rng(0)),
        ReLU(),
        Linear(128, 8, rng=np.random.default_rng(1)),
    )
    Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32).fit(
        x_train, y_train, epochs=1
    )
    return model, x_test


@pytest.mark.benchmark(group="recovery")
def test_chaos_drives_recover_with_zero_client_failures(benchmark, workload,
                                                        tmp_path_factory):
    """Kill-storm, seeded hang and corrupt-slot drives over process
    workers: zero failures, full respawn, plan cache keeps the respawns
    recompile-free; writes ``BENCH_recovery.json`` (one write, all keys).
    """
    model, x_test = workload
    cache_dir = str(tmp_path_factory.mktemp("plan-cache"))
    config = ServeConfig(max_batch=16, num_workers=2, workers="process",
                         plan_cache=cache_dir, max_retries=4)

    def storm():
        return run_loadtest(model, x_test, config, pattern="uniform",
                            rate_rps=RATE_RPS, num_requests=REQUESTS,
                            seed=5, scenario="kill-storm", kills=KILLS,
                            kill_interval_s=0.04)

    result = benchmark.pedantic(storm, rounds=1, iterations=1)
    chaos = result.chaos
    snapshot = result.snapshot
    success_ratio = 1.0 - result.failures / REQUESTS
    recovered_fraction = chaos["alive_workers"] / config.num_workers
    recovery_s = float(chaos["recovery_s"])

    print()
    print(f"kill-storm: {chaos['kills']} kills, {result.failures} client "
          f"failures / {REQUESTS} requests, "
          f"{snapshot.retried_batches} batches re-dispatched, "
          f"{snapshot.respawns} respawns, worst recovery "
          f"{recovery_s * 1e3:.0f} ms, plan cache "
          f"{snapshot.plan_cache_hits} hits / "
          f"{snapshot.plan_cache_misses} misses")

    # --- seeded hang: dispatch deadline -> kill -> respawn -> re-dispatch
    # Per-process fault counters re-arm in every respawned worker, so the
    # ``at=(2,)`` hang can re-fire after a respawn; the generous retry
    # budget plus jittered re-dispatch backoff breaks the resonance where
    # a retried batch keeps landing on a fresh worker's fatal call index.
    hang_config = ServeConfig(
        max_batch=16, num_workers=2, workers="process",
        dispatch_timeout_s=0.5, max_retries=8,
        redispatch_backoff_base_s=0.01,
        faults=FaultSpec(seed=11, rules=(
            FaultRule(site="worker.forward", action="hang", at=(2,),
                      hang_s=30.0, max_fires=1),)))
    hang = run_loadtest(model, x_test, hang_config, pattern="uniform",
                        rate_rps=RATE_RPS, num_requests=CHAOS_REQUESTS,
                        seed=5, scenario="chaos-sweep")
    hang_chaos = hang.chaos
    hang_success = 1.0 - hang.failures / CHAOS_REQUESTS
    print(f"hang-recovery: {hang_chaos['dispatch_timeouts']} dispatch "
          f"timeouts, {hang.failures} client failures / {CHAOS_REQUESTS} "
          f"requests, {hang_chaos['respawns']} respawns")

    # --- seeded slot corruption: CRC catch -> re-dispatch, no deaths
    corrupt_config = ServeConfig(
        max_batch=16, num_workers=2, workers="process",
        shm_integrity=True, max_retries=8, redispatch_backoff_base_s=0.01,
        faults=FaultSpec(seed=11, rules=(
            FaultRule(site="shm.request.write", action="corrupt", at=(1,),
                      max_fires=1),)))
    corrupt = run_loadtest(model, x_test, corrupt_config, pattern="uniform",
                           rate_rps=RATE_RPS, num_requests=CHAOS_REQUESTS,
                           seed=5, scenario="chaos-sweep")
    corrupt_chaos = corrupt.chaos
    corrupt_success = 1.0 - corrupt.failures / CHAOS_REQUESTS
    print(f"corrupt-slot: {corrupt_chaos['corruptions']} corruptions "
          f"caught, {corrupt.failures} client failures / {CHAOS_REQUESTS} "
          f"requests, {corrupt_chaos['worker_deaths']} worker deaths")

    # One write carries every drive's keys: write_bench_json replaces the
    # whole BENCH_recovery.json, so split writes would drop earlier keys.
    path = write_bench_json("recovery", {
        "requests": REQUESTS,
        "kills_requested": KILLS,
        "kills_delivered": chaos["kills"],
        "client_success_ratio": success_ratio,
        "recovered_fraction": recovered_fraction,
        "recovery_s": recovery_s,
        "worker_deaths": snapshot.worker_deaths,
        "retried_batches": snapshot.retried_batches,
        "respawns": snapshot.respawns,
        "plan_cache_hits": snapshot.plan_cache_hits,
        "plan_cache_misses": snapshot.plan_cache_misses,
        "chaos_requests": CHAOS_REQUESTS,
        "hang_success_ratio": hang_success,
        "hang_recovered_fraction": (hang_chaos["alive_workers"]
                                    / hang_config.num_workers),
        "hang_dispatch_timeouts": hang_chaos["dispatch_timeouts"],
        "hang_respawns": hang_chaos["respawns"],
        "corrupt_success_ratio": corrupt_success,
        "corrupt_recovered_fraction": (corrupt_chaos["alive_workers"]
                                       / corrupt_config.num_workers),
        "corrupt_slots_caught": corrupt_chaos["corruptions"],
        "corrupt_worker_deaths": corrupt_chaos["worker_deaths"],
    })
    print(f"Trajectory written to {path}")

    assert chaos["kills"] >= 1, "the storm never landed a kill"
    assert result.failures == 0, (
        f"{result.failures} client-visible failures during the kill-storm")
    assert chaos["recovered"], "pool did not respawn to full strength"
    assert recovered_fraction == 1.0
    assert snapshot.respawns >= 1
    # Respawns reuse the cached payload: compilation (a cache miss + store)
    # happens at most once, at cold start — never during the storm.
    assert snapshot.plan_cache_misses <= 1
    # Hang drive: the deadline must actually fire, and fire recoverably.
    assert hang_chaos["dispatch_timeouts"] >= 1, "the hang never tripped"
    assert hang.failures == 0, (
        f"{hang.failures} client-visible failures during hang recovery")
    assert hang_chaos["recovered"], "pool did not recover from the hang"
    # Corrupt drive: CRC must catch the injected bit-rot, and catching it
    # must not kill the (healthy) worker.
    assert corrupt_chaos["corruptions"] >= 1, "the corruption went uncaught"
    assert corrupt.failures == 0, (
        f"{corrupt.failures} client failures during corrupt-slot recovery")
    assert corrupt_chaos["worker_deaths"] == 0, (
        "slot corruption must re-dispatch without killing the worker")
