"""Benchmark: per-backend inference throughput of the execution engine.

Runs a 64-sample CNN inference through every registered execution backend
and records samples/s, and races the batch-vectorised ``analog`` backend
against the seed's per-sample full-array readout path (one sample at a
time, every evaluation padded to all 576 rows and converting all 256 ADC
channels).  The acceptance bar: the batched backend is at least 3x faster
while agreeing with the reference within the integration-test tolerance.

Run with::

    pytest benchmarks/bench_exec_backends.py --benchmark-only -s
"""

import numpy as np
import pytest

from repro.core import MacroConfig
from repro.exec import AnalogBackend, available_backends, compare_backends, run_model
from repro.nn import DatasetConfig, SGD, SyntheticImageDataset, Trainer, build_resnet_lite
from repro.nn.quantize import CIMNonidealities
from repro.rram.device import RRAMStatistics

SAMPLES = 64


@pytest.fixture(scope="module")
def workload():
    """A small trained CNN plus a 64-sample evaluation batch."""
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=8, image_size=16,
                                                  noise_sigma=0.3, seed=7))
    x_train, y_train, x_test, y_test = dataset.train_test_split(320, SAMPLES)
    model = build_resnet_lite(num_classes=8, stage_widths=(8, 16), blocks_per_stage=1,
                              seed=7)
    Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32).fit(
        x_train, y_train, epochs=2
    )
    quiet = RRAMStatistics(programming_sigma=0.01, read_noise_sigma=0.005,
                           stuck_at_lrs_probability=0.0, stuck_at_hrs_probability=0.0)
    macro_config = MacroConfig(device_statistics=quiet)
    return model, x_train, x_test, y_test, macro_config


@pytest.mark.benchmark(group="exec-backends")
def test_backend_throughput_table(benchmark, workload):
    """Record samples/s for every registered backend on the same workload."""
    model, x_train, x_test, y_test, macro_config = workload

    def run_all():
        return compare_backends(
            model, x_test, y_test,
            backends=available_backends(),
            calibration=x_train[:16],
            macro_config=macro_config,
            nonidealities=CIMNonidealities(mac_noise_sigma=0.02),
            max_mapped_layers=2,
            seed=0,
        )

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nPer-backend throughput (64-sample CNN inference):")
    ideal = reports["ideal"].accuracy
    for name, report in sorted(reports.items()):
        print(f"  {name:12s} {report.samples_per_second:10.1f} samples/s  "
              f"accuracy {report.accuracy:.3f}")
        assert report.accuracy >= ideal - 0.2, name


@pytest.mark.benchmark(group="exec-backends")
def test_batched_analog_vs_seed_per_sample_path(benchmark, workload):
    """The batched analog backend is >= 3x faster than the seed per-sample
    path (per-sample evaluation with the original full-array readout), with
    equivalent accuracy."""
    model, x_train, x_test, y_test, macro_config = workload
    kwargs = dict(calibration=x_train[:16], macro_config=macro_config,
                  max_mapped_layers=2, seed=0)

    # Batched: the default vectorised analog backend, whole batch at once.
    # Timing assertions on shared CI runners must not hinge on a single
    # sample: take the best of several runs on both sides (the minimum is
    # the standard noise-robust statistic for wall-clock comparisons) and
    # use each report's internal forward-only time, which excludes prepare
    # and harness overhead.
    batched_backend = AnalogBackend(vectorized=True)
    run_model(model, x_test[:1], backend=batched_backend, **kwargs)  # prepare once
    batched_times = []

    def batched():
        report = run_model(model, x_test, y_test, backend=batched_backend,
                           batch_size=SAMPLES, **kwargs)
        batched_times.append(report.wall_time_s)
        return report

    batched_report = benchmark.pedantic(batched, rounds=3, iterations=1)
    batched_time = min(batched_times)

    # Seed path: one sample at a time through the original full-array,
    # two-pass readout (pads every evaluation to 576 rows, converts all 256
    # ADC channels) — how the repository executed analog inference before
    # the vectorised engine.
    reference_backend = AnalogBackend(vectorized=False)
    run_model(model, x_test[:1], backend=reference_backend, **kwargs)  # prepare once
    reference_times = []
    for _ in range(2):
        reference_report = run_model(model, x_test, y_test,
                                     backend=reference_backend,
                                     batch_size=1, **kwargs)
        reference_times.append(reference_report.wall_time_s)
    per_sample_time = min(reference_times)

    speedup = per_sample_time / batched_time
    print(f"\nBatched analog: {batched_time:.3f}s "
          f"({batched_report.samples_per_second:.1f} samples/s)")
    print(f"Seed per-sample path: {per_sample_time:.3f}s "
          f"({SAMPLES / per_sample_time:.1f} samples/s)")
    print(f"Speedup: {speedup:.1f}x")
    print(f"Accuracy batched {batched_report.accuracy:.3f} vs "
          f"reference {reference_report.accuracy:.3f}")

    assert speedup >= 3.0, f"batched analog only {speedup:.2f}x faster"
    assert abs(batched_report.accuracy - reference_report.accuracy) <= 0.2
