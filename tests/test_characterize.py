"""Tests for the hardware characterization suite (`repro.characterize`).

Covers the INL/DNL math against analytically known staircases, the spec
registry's verdict semantics (at-limit passes, missing scalars fail), the
sweep-name registry contract, Monte-Carlo seed determinism (same seed ->
bit-identical datasheet JSON), the hardware-health gauge plumbing into the
Prometheus/JSON expositions, and the substrate helper methods this suite
measures through.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.characterize import (
    CharacterizeOptions,
    MACRO_CONFIGS,
    SpecLimit,
    SpecRegistry,
    available_sweeps,
    characterize_macro,
    get_macro_config,
    get_sweep,
    publish_datasheet_gauges,
)
from repro.characterize.linearity import (
    local_lsb,
    staircase_dnl,
    staircase_inl,
    worst_abs,
)
from repro.characterize.sweeps import SweepOptions
from repro.circuits.noise import adc_noise_budget
from repro.circuits.transient import Waveform
from repro.core.config import e2m5_macro_config
from repro.core.fp_adc import FPADC
from repro.core.fp_dac import FPDAC
from repro.obs.exposition import NAMESPACE, render_prometheus, snapshot_to_json
from repro.obs.health import HARDWARE_HEALTH
from repro.power.macro_power import energy_at_unit_capacitance
from repro.rram.device import RRAMDeviceModel
from repro.serve.metrics import ServiceMetrics


@pytest.fixture(autouse=True)
def _clean_health_registry():
    HARDWARE_HEALTH.clear()
    yield
    HARDWARE_HEALTH.clear()


#: Reduced Monte-Carlo depth so every full characterization here stays fast.
#: 32 samples is the floor at which the stuck-rate granularity (one cell in
#: ``mc_samples * levels``) resolves below its 0.005 spec limit.
FAST = CharacterizeOptions(configs=("e2m5",), corners=2, mc_samples=32)


@pytest.fixture(scope="module")
def e2m5_sheet():
    return characterize_macro("e2m5", FAST)


# ----------------------------------------------------------------------
# Linearity math on analytically known staircases
# ----------------------------------------------------------------------
class TestLinearity:
    #: An FP-style staircase: unit steps in the first binade, steps of two
    #: in the second, so the local LSB changes mid-staircase.
    IDEAL = np.array([0.0, 1.0, 2.0, 4.0, 6.0, 8.0])

    def test_local_lsb_repeats_last_step(self):
        assert local_lsb(self.IDEAL).tolist() == [1, 1, 2, 2, 2, 2]

    def test_ideal_staircase_has_zero_inl_and_dnl(self):
        assert staircase_inl(self.IDEAL, self.IDEAL).tolist() == [0.0] * 6
        assert staircase_dnl(self.IDEAL, self.IDEAL).tolist() == [0.0] * 5

    def test_single_code_offset_has_exact_inl_and_dnl(self):
        # A +0.25 offset on code 2 (local LSB 2 there): INL[2] = 0.25/2,
        # the step into code 2 widens by 0.25/1, the step out narrows by
        # 0.25/2 — all exact in binary floating point.
        measured = self.IDEAL.copy()
        measured[2] += 0.25
        inl = staircase_inl(measured, self.IDEAL)
        dnl = staircase_dnl(measured, self.IDEAL)
        assert inl.tolist() == [0.0, 0.0, 0.125, 0.0, 0.0, 0.0]
        assert dnl.tolist() == [0.0, 0.25, -0.125, 0.0, 0.0]

    def test_worst_abs_of_empty_is_zero(self):
        assert worst_abs(np.array([])) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            staircase_inl(self.IDEAL[:-1], self.IDEAL)


# ----------------------------------------------------------------------
# Spec registry semantics
# ----------------------------------------------------------------------
class TestSpecs:
    def test_exactly_at_limit_passes_both_kinds(self):
        top = SpecLimit(name="x", kind="max", limit=0.5)
        floor = SpecLimit(name="y", kind="min", limit=0.2)
        assert top.passes(0.5) and not top.passes(0.5 + 1e-12)
        assert floor.passes(0.2) and not floor.passes(0.2 - 1e-12)
        assert top.margin(0.5) == 0.0
        assert floor.margin(0.2) == 0.0

    def test_margin_is_normalised_headroom(self):
        assert SpecLimit(name="x", kind="max", limit=2.0).margin(1.0) == 0.5
        assert SpecLimit(name="y", kind="min", limit=2.0).margin(3.0) == 0.5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            SpecLimit(name="x", kind="target", limit=1.0)

    def test_duplicate_limit_rejected(self):
        limit = SpecLimit(name="x", kind="max", limit=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            SpecRegistry([limit, limit])

    def test_unknown_and_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            SpecRegistry.from_json(
                '{"*": {"x": {"kind": "max", "limit": 1, "severity": 9}}}',
                "e2m5")
        with pytest.raises(ValueError, match="required"):
            SpecRegistry.from_json('{"*": {"x": {"kind": "max"}}}', "e2m5")

    def test_config_section_overrides_star(self):
        registry = SpecRegistry.from_json(json.dumps({
            "*": {"a": {"kind": "max", "limit": 1.0}},
            "e2m5": {"a": {"kind": "max", "limit": 2.0},
                     "b": {"kind": "min", "limit": 0.5}},
        }), "e2m5")
        assert registry.limits["a"].limit == 2.0
        assert set(registry.limits) == {"a", "b"}
        other = SpecRegistry.from_json(json.dumps({
            "*": {"a": {"kind": "max", "limit": 1.0}},
        }), "e3m4")
        assert other.limits["a"].limit == 1.0

    def test_missing_scalar_is_a_failing_line(self):
        registry = SpecRegistry([SpecLimit(name="x", kind="max", limit=1.0)])
        (line,) = registry.evaluate({})
        assert line.verdict == "MISSING"
        assert not line.passed
        assert line.measured is None
        assert line.margin == float("-inf")

    def test_defaults_exist_for_every_registered_config(self):
        for name in MACRO_CONFIGS:
            registry = SpecRegistry.default_for(name)
            assert "noise_floor_mv" in registry.limits
            assert "adc_inl_max_lsb" in registry.limits


# ----------------------------------------------------------------------
# Name registries
# ----------------------------------------------------------------------
class TestRegistries:
    def test_sweep_registry_lists_all_engines(self):
        assert available_sweeps() == ["adc_linearity", "dac_linearity",
                                      "noise_energy", "rram_corners",
                                      "settling"]

    def test_unknown_sweep_raises_keyerror_listing_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_sweep("dac_linearities")
        message = str(excinfo.value)
        assert "characterization sweep" in message
        assert "dac_linearity" in message

    def test_unknown_macro_config_raises_keyerror_listing_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_macro_config("e9m9")
        assert "e2m5" in str(excinfo.value)

    def test_bad_sweep_name_fails_before_any_sweep_runs(self):
        options = dataclasses.replace(FAST, sweeps=("nope",))
        with pytest.raises(KeyError):
            characterize_macro("e2m5", options)


# ----------------------------------------------------------------------
# Datasheets: determinism, subsets, custom specs
# ----------------------------------------------------------------------
class TestDatasheet:
    def test_same_seed_is_bit_identical(self, e2m5_sheet):
        again = characterize_macro("e2m5", FAST)
        assert e2m5_sheet.to_json() == again.to_json()

    def test_different_seed_changes_the_monte_carlo(self, e2m5_sheet):
        other = characterize_macro(
            "e2m5", dataclasses.replace(FAST, seed=1))
        assert (other.scalars["programming_sigma_rel"]
                != e2m5_sheet.scalars["programming_sigma_rel"])

    def test_full_run_evaluates_every_default_spec_line(self, e2m5_sheet):
        expected = set(SpecRegistry.default_for("e2m5").limits)
        assert {line.name for line in e2m5_sheet.spec_lines} == expected
        assert all(line.measured is not None for line in e2m5_sheet.spec_lines)

    def test_json_document_round_trips(self, e2m5_sheet):
        document = json.loads(e2m5_sheet.to_json())
        assert document["config_name"] == "e2m5"
        assert document["passed"] == e2m5_sheet.passed
        assert {sweep["name"] for sweep in document["sweeps"]} \
            == set(available_sweeps())

    def test_markdown_leads_with_spec_lines(self, e2m5_sheet):
        rendered = e2m5_sheet.render_markdown()
        assert rendered.index("## Spec lines") < rendered.index("## Configuration")
        for line in e2m5_sheet.spec_lines:
            assert line.name in rendered

    def test_sweep_subset_restricts_the_spec_registry(self):
        options = dataclasses.replace(
            FAST, sweeps=("dac_linearity", "noise_energy"))
        sheet = characterize_macro("e2m5", options)
        names = {line.name for line in sheet.spec_lines}
        assert names == {"dac_inl_max_lsb", "dac_dnl_max_lsb",
                         "noise_floor_mv", "conversion_energy_nj"}
        assert all(line.verdict != "MISSING" for line in sheet.spec_lines)

    def test_custom_spec_json_can_fail_a_run(self):
        spec_json = json.dumps({
            "*": {"noise_floor_mv": {"kind": "max", "limit": 1e-6}}})
        options = dataclasses.replace(
            FAST, sweeps=("noise_energy",), spec_json=spec_json)
        sheet = characterize_macro("e2m5", options)
        assert not sheet.passed
        (line,) = sheet.spec_lines
        assert line.verdict == "FAIL"

    def test_unmeasured_custom_limit_fails_a_full_run(self):
        spec_json = json.dumps({
            "*": {"made_up_scalar": {"kind": "max", "limit": 1.0}}})
        sheet = characterize_macro(
            "e2m5", dataclasses.replace(FAST, spec_json=spec_json))
        assert not sheet.passed
        (line,) = sheet.spec_lines
        assert line.verdict == "MISSING"

    def test_write_emits_json_and_markdown_twins(self, e2m5_sheet, tmp_path):
        paths = e2m5_sheet.write(tmp_path)
        assert json.loads(paths["json"].read_text())["config_name"] == "e2m5"
        assert paths["markdown"].read_text().startswith("# AFPR-CIM")


# ----------------------------------------------------------------------
# Hardware-health gauges in the expositions
# ----------------------------------------------------------------------
class TestHealthGauges:
    def test_publish_rejects_empty_config_name(self):
        with pytest.raises(ValueError):
            HARDWARE_HEALTH.publish("", {"x": 1.0})

    def test_datasheet_gauges_reach_both_expositions(self, e2m5_sheet):
        published = publish_datasheet_gauges(e2m5_sheet)
        assert published["specs_pass"] == 1.0
        assert "noise_floor_mv" in published

        text = render_prometheus(ServiceMetrics().snapshot())
        assert f'{NAMESPACE}_hw_specs_pass{{config="e2m5"}} 1' in text
        assert f'{NAMESPACE}_hw_noise_floor_mv{{config="e2m5"}}' in text

        document = snapshot_to_json(ServiceMetrics().snapshot())
        health = document["hardware_health"]["e2m5"]
        assert health["specs_pass"] == 1.0
        assert health["noise_floor_mv"] == pytest.approx(
            e2m5_sheet.scalars["noise_floor_mv"])

    def test_expositions_omit_the_section_when_nothing_published(self):
        snapshot = ServiceMetrics().snapshot()
        assert "hardware_health" not in snapshot_to_json(snapshot)
        assert "_hw_" not in render_prometheus(snapshot)


# ----------------------------------------------------------------------
# Substrate helpers the sweeps measure through
# ----------------------------------------------------------------------
class TestSubstrateHelpers:
    def test_adc_transition_charges_are_the_lut_edges(self):
        adc = FPADC(e2m5_macro_config().adc)
        bounds = adc.transition_charges()
        assert bounds is not None
        assert np.all(np.diff(bounds) >= 0)
        lut = adc.conversion_lut()
        # Just above each transition the decoded value takes the upper
        # bucket's value; the edges really are the code transitions.
        probe_adc = FPADC(adc.config, channels=bounds.size)
        probe = (bounds + 1e-21) / adc.config.integration_time
        decoded = probe_adc.convert(probe[None, :]).value[0]
        assert decoded.tolist() == lut.values[1:].tolist()

    def test_stochastic_adc_has_no_exact_transitions(self):
        config = dataclasses.replace(e2m5_macro_config().adc,
                                     comparator_noise=1e-3)
        assert FPADC(config, rng=np.random.default_rng(0)) \
            .transition_charges() is None

    def test_dac_ideal_transfer_is_the_exact_fp_staircase(self):
        config = e2m5_macro_config().dac
        dac = FPDAC(config, rng=np.random.default_rng(0))
        ideal = dac.ideal_transfer_table()
        measured = dac.transfer_table()
        assert ideal.shape == measured.shape
        # Same codes and decoded FP values; the ideal voltage is exactly
        # value * volts_per_unit, which the real ladder (its taps carry
        # architectural quantisation even with zero mismatch) only
        # approximates — that residual is precisely what the linearity
        # sweep measures.
        np.testing.assert_array_equal(ideal[:, :2], measured[:, :2])
        np.testing.assert_array_equal(ideal[:, 2],
                                      ideal[:, 1] * dac.volts_per_unit)
        np.testing.assert_allclose(ideal[:, 2], measured[:, 2], rtol=1e-3)

    def test_waveform_settling_time(self):
        times = np.linspace(0.0, 1.0, 11)
        values = np.where(times < 0.45, 0.0, 1.0)
        wave = Waveform("v", times, values)
        assert wave.settling_time(1.0, 0.1) == pytest.approx(0.4)
        assert wave.settling_time(0.0, 10.0) == 0.0
        with pytest.raises(ValueError):
            wave.settling_time(1.0, 0.0)

    def test_drift_shift_is_deterministic_and_grows(self):
        macro = e2m5_macro_config()
        device = RRAMDeviceModel(macro.conductance, macro.device_statistics,
                                 seed=3)
        short = np.abs(device.drift_shift(10.0))
        long = np.abs(device.drift_shift(1e5))
        assert short.shape == macro.conductance.values.shape
        assert np.all(long >= short)
        again = RRAMDeviceModel(macro.conductance, macro.device_statistics,
                                seed=4)
        np.testing.assert_array_equal(device.drift_shift(1e3),
                                      again.drift_shift(1e3))

    def test_noise_budget_shrinks_with_larger_capacitor(self):
        adc = e2m5_macro_config().adc
        small = adc_noise_budget(adc).total_rms()
        big = adc_noise_budget(dataclasses.replace(
            adc, unit_capacitance=adc.unit_capacitance * 4)).total_rms()
        assert 0 < big < small

    def test_conversion_energy_grows_with_capacitor(self):
        macro = e2m5_macro_config()
        nominal = energy_at_unit_capacitance(macro, macro.adc.unit_capacitance)
        doubled = energy_at_unit_capacitance(
            macro, macro.adc.unit_capacitance * 2)
        assert 0 < nominal < doubled
        with pytest.raises(ValueError):
            energy_at_unit_capacitance(macro, 0.0)


# ----------------------------------------------------------------------
# Sweep options validation
# ----------------------------------------------------------------------
class TestSweepOptions:
    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            SweepOptions(corners=0)
        with pytest.raises(ValueError):
            SweepOptions(mc_samples=0)
        with pytest.raises(ValueError):
            SweepOptions(drift_allowance=0.0)
