"""Benchmark: fault-tolerance contract under a kill-storm chaos drive.

The acceptance bars (hard asserts, so the gate never silently relaxes):

* with ``retry_policy="redispatch"`` a storm of SIGKILLs against random
  process workers during open-loop traffic causes **zero client-visible
  failures** — every dead worker's batches re-dispatch to survivors;
* the pool respawns back to its configured replica count within the
  recovery timeout;
* the respawned workers come from the plan-cache payload — the run
  records plan-cache hit/miss counters and asserts the storm itself
  compiled nothing (misses happen at most once, at cold start).

``BENCH_recovery.json`` records the client success ratio, the recovered
fraction of the pool, the worst observed recovery time and the retry /
respawn counters; ``check_regression.py`` gates the ratios against the
committed baseline.

Run with::

    pytest benchmarks/bench_recovery.py --benchmark-only -s
"""

import numpy as np
import pytest

from _timing import smoke_mode, write_bench_json
from repro.nn import DatasetConfig, SGD, Sequential, SyntheticImageDataset, Trainer
from repro.nn.layers import Flatten, Linear, ReLU
from repro.serve import ServeConfig
from repro.serve.loadgen import run_loadtest

REQUESTS = 90 if smoke_mode() else 240
KILLS = 2 if smoke_mode() else 4
RATE_RPS = 600.0


@pytest.fixture(scope="module")
def workload():
    """A trained MLP plus request payloads for the chaos drive."""
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=8, image_size=12,
                                                  noise_sigma=0.3, seed=29))
    x_train, y_train, x_test, _ = dataset.train_test_split(192, 64)
    model = Sequential(
        Flatten(),
        Linear(432, 128, rng=np.random.default_rng(0)),
        ReLU(),
        Linear(128, 8, rng=np.random.default_rng(1)),
    )
    Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32).fit(
        x_train, y_train, epochs=1
    )
    return model, x_test


@pytest.mark.benchmark(group="recovery")
def test_kill_storm_recovers_with_zero_client_failures(benchmark, workload,
                                                       tmp_path_factory):
    """Kill-storm over process workers: zero failures, full respawn, plan
    cache keeps the respawns recompile-free; writes ``BENCH_recovery.json``.
    """
    model, x_test = workload
    cache_dir = str(tmp_path_factory.mktemp("plan-cache"))
    config = ServeConfig(max_batch=16, num_workers=2, workers="process",
                         plan_cache=cache_dir, max_retries=4)

    def storm():
        return run_loadtest(model, x_test, config, pattern="uniform",
                            rate_rps=RATE_RPS, num_requests=REQUESTS,
                            seed=5, scenario="kill-storm", kills=KILLS,
                            kill_interval_s=0.04)

    result = benchmark.pedantic(storm, rounds=1, iterations=1)
    chaos = result.chaos
    snapshot = result.snapshot
    success_ratio = 1.0 - result.failures / REQUESTS
    recovered_fraction = chaos["alive_workers"] / config.num_workers
    recovery_s = float(chaos["recovery_s"])

    print()
    print(f"kill-storm: {chaos['kills']} kills, {result.failures} client "
          f"failures / {REQUESTS} requests, "
          f"{snapshot.retried_batches} batches re-dispatched, "
          f"{snapshot.respawns} respawns, worst recovery "
          f"{recovery_s * 1e3:.0f} ms, plan cache "
          f"{snapshot.plan_cache_hits} hits / "
          f"{snapshot.plan_cache_misses} misses")

    path = write_bench_json("recovery", {
        "requests": REQUESTS,
        "kills_requested": KILLS,
        "kills_delivered": chaos["kills"],
        "client_success_ratio": success_ratio,
        "recovered_fraction": recovered_fraction,
        "recovery_s": recovery_s,
        "worker_deaths": snapshot.worker_deaths,
        "retried_batches": snapshot.retried_batches,
        "respawns": snapshot.respawns,
        "plan_cache_hits": snapshot.plan_cache_hits,
        "plan_cache_misses": snapshot.plan_cache_misses,
    })
    print(f"Trajectory written to {path}")

    assert chaos["kills"] >= 1, "the storm never landed a kill"
    assert result.failures == 0, (
        f"{result.failures} client-visible failures during the kill-storm")
    assert chaos["recovered"], "pool did not respawn to full strength"
    assert recovered_fraction == 1.0
    assert snapshot.respawns >= 1
    # Respawns reuse the cached payload: compilation (a cache miss + store)
    # happens at most once, at cold start — never during the storm.
    assert snapshot.plan_cache_misses <= 1
