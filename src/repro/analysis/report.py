"""Small ASCII rendering helpers shared by the experiment runners.

The benchmarks print the same rows and series the paper's tables and figures
contain; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_quantity(value: Optional[float], unit: str = "", precision: int = 3) -> str:
    """Format a number with a unit, using '-' for missing values."""
    if value is None:
        return "-"
    formatted = f"{value:.{precision}g}"
    return f"{formatted} {unit}".strip()


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a list of rows as a fixed-width ASCII table."""
    headers = [str(h) for h in headers]
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
    widths = [len(h) for h in headers]
    for row in string_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append(separator)
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[float], ys: Sequence[float],
                  x_label: str = "x", y_label: str = "y",
                  max_points: int = 20) -> str:
    """Render an (x, y) series as a compact ASCII listing.

    Long series are downsampled to ``max_points`` evenly spaced points so the
    benchmark output stays readable.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    n = len(xs)
    if n == 0:
        return f"{name}: (empty series)"
    if n > max_points:
        step = max(1, n // max_points)
        indices = list(range(0, n, step))
        if indices[-1] != n - 1:
            indices.append(n - 1)
    else:
        indices = list(range(n))
    lines = [f"{name} ({x_label} -> {y_label}):"]
    for i in indices:
        lines.append(f"  {xs[i]:.6g} -> {ys[i]:.6g}")
    return "\n".join(lines)
