#!/usr/bin/env python3
"""Design-space exploration with the macro power model.

Reproduces the paper's architecture-level comparisons and lets you poke at
the knobs the authors discuss in Sections III/IV:

* the Fig. 6 module power breakdown for INT8 / FP8 E3M4 / FP8 E2M5,
* the Table I comparison against published and modelled baselines,
* a format sweep (how would E4M3 or a hypothetical E2M6 macro do?),
* the sparsity head-room of the paper's "high-density mode" numbers.

Run with::

    python examples/power_explorer.py
"""

from repro.analysis import (
    run_fig6_power,
    run_sparsity_ablation,
    run_table1,
)
from repro.analysis.report import render_table
from repro.core import macro_config_for_format
from repro.power import MacroPowerModel


def format_sweep_table() -> str:
    """Macro-level consequences of alternative FP bit assignments."""
    rows = []
    for exponent_bits, mantissa_bits in ((2, 5), (3, 4), (4, 3), (2, 6), (1, 6)):
        config = macro_config_for_format(exponent_bits, mantissa_bits)
        breakdown = MacroPowerModel(config).breakdown()
        rows.append((
            config.format_name,
            f"{breakdown.conversion_time * 1e9:.1f}",
            f"{breakdown.adc_energy * 1e9:.2f}",
            f"{breakdown.total_energy * 1e9:.2f}",
            f"{breakdown.throughput_gops:.0f}",
            f"{breakdown.energy_efficiency_tops_per_watt:.2f}",
        ))
    return render_table(
        ["format", "T_conv (ns)", "ADC energy (nJ)", "total energy (nJ)",
         "GFLOPS", "TFLOPS/W"],
        rows,
        title="Format design-space sweep (AFPR-CIM macro power model)",
    )


def main() -> None:
    print(run_fig6_power().render())
    print()
    print(run_table1().render())
    print()
    print(format_sweep_table())
    print()
    print(run_sparsity_ablation().render())


if __name__ == "__main__":
    main()
