"""Name -> backend registry behind ``run_model(..., backend="analog")``.

Backends self-register at import time with the :func:`register_backend`
decorator; the engine resolves names through :func:`create_backend`.  The
registry is intentionally tiny — a dict plus validation — so growing the
system (a sharded backend, an async backend, a new number format) is one
decorated class away.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.exec.backend import ExecutionBackend

_BACKENDS: Dict[str, Type[ExecutionBackend]] = {}


def register_backend(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
    """Class decorator registering an :class:`ExecutionBackend` by its name."""
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"{cls.__name__} must define a concrete `name`")
    if name in _BACKENDS and _BACKENDS[name] is not cls:
        raise ValueError(f"backend name {name!r} is already registered")
    _BACKENDS[name] = cls
    return cls


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_BACKENDS)


def get_backend_class(name: str) -> Type[ExecutionBackend]:
    """Resolve a backend name to its class.

    Raises
    ------
    KeyError
        If no backend of that name is registered; the message lists every
        registered name so a typo on a CLI flag or a service config is
        immediately actionable.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown execution backend {name!r}; "
            f"registered backends: {', '.join(available_backends())}"
        ) from None


def create_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate a registered backend by name."""
    return get_backend_class(name)(**options)
