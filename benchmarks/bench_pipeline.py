"""Benchmark: pipeline-parallel sharded serving of a deep workload.

Acceptance bars:

* serving a deep matmul workload with ``ServeConfig(pipeline_stages=N)``
  (the compiled plan cut across N stage processes, batches streamed over
  shared-memory stage rings) sustains at least **1.5x** the steady-state
  throughput of the same model served by one process worker — pipeline
  stages genuinely overlap across batches;
* pipelined serving is **bit-identical** to single-worker process serving
  and to a direct ``run_model`` call (the sharding contract: cutting the
  plan changes where layers run, never what they compute);
* a model whose mapped macros exceed the per-worker crossbar budget is
  rejected at one stage and **runs via sharding** (covered in depth by
  ``tests/test_shard.py``; the identity check here serves the same plan
  through real stage processes).

The workload is a deep stack of equal dense blocks — the regime pipeline
parallelism targets: per-batch compute an order of magnitude above the
per-edge transport cost, and enough layers to cut into balanced stages.
Pipeline parallelism needs real cores; on starved runners (fewer cores
than stages + parent) the throughput comparison is skipped, which the
regression gate treats as a warning, not a failure.

Run with::

    pytest benchmarks/bench_pipeline.py --benchmark-only -s
"""

import os

import numpy as np
import pytest

from _timing import best_metric, smoke_mode, write_bench_json
from repro.exec import run_model
from repro.nn import DatasetConfig, SGD, Sequential, SyntheticImageDataset, Trainer
from repro.nn.layers import Flatten, Linear, ReLU
from repro.serve import ServeConfig, serve_requests

STAGES = 3
HIDDEN = 512 if smoke_mode() else 768
DEPTH = 6  # hidden-to-hidden blocks between the stem and the head
REQUESTS = 512 if smoke_mode() else 1024
MAX_BATCH = 64
ROUNDS = 2 if smoke_mode() else 3


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def deep_workload():
    """A deep trained MLP plus a request stream for the pipeline benchmark.

    Equal-width dense blocks give the partitioner a clean cost-balancing
    problem (each stage ends up with ~DEPTH/STAGES blocks) and keep the
    inter-stage activations small relative to per-stage compute.
    """
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=8, image_size=12,
                                                  noise_sigma=0.3, seed=29))
    x_train, y_train, x_test, _ = dataset.train_test_split(256, 64)
    layers = [Flatten(), Linear(432, HIDDEN, rng=np.random.default_rng(0)), ReLU()]
    for index in range(DEPTH):
        layers += [Linear(HIDDEN, HIDDEN, rng=np.random.default_rng(index + 1)),
                   ReLU()]
    layers += [Linear(HIDDEN, 8, rng=np.random.default_rng(DEPTH + 1))]
    model = Sequential(*layers)
    Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32).fit(
        x_train, y_train, epochs=1
    )
    requests = np.tile(x_test, (REQUESTS // len(x_test), 1, 1, 1))
    return model, requests


def _best_serving_time(model, images, config, rounds=ROUNDS):
    """Best-of-N first-arrival-to-last-completion time of a full serve run."""
    def serve_once():
        _, snapshot = serve_requests(model, images, config)
        assert snapshot.samples == len(images) and snapshot.dropped == 0
        return snapshot

    best, snapshot = best_metric(serve_once, lambda s: s.wall_time_s,
                                 rounds=rounds)
    return best, snapshot


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_serving_bit_identical(benchmark, deep_workload):
    """Pipelined serving reproduces direct and 1-worker-process execution
    bit for bit on the deep workload."""
    model, requests = deep_workload
    images = requests[:MAX_BATCH]

    def check_identity():
        direct = run_model(model, images, backend="ideal",
                           batch_size=len(images))
        pipelined, snapshot = serve_requests(
            model, images,
            ServeConfig(max_batch=len(images), pipeline_stages=STAGES))
        one_proc, _ = serve_requests(
            model, images,
            ServeConfig(max_batch=len(images), workers="process"))
        assert all(worker.mode == "pipeline" for worker in snapshot.workers)
        assert any(worker.stages for worker in snapshot.workers), (
            "pipeline worker reported no per-stage occupancy")
        return {
            "direct": np.array_equal(pipelined, direct.logits),
            "one_process": np.array_equal(pipelined, one_proc),
        }

    outcomes = benchmark.pedantic(check_identity, rounds=1, iterations=1)
    print("\nPipelined-vs-reference bit identity:")
    for key, identical in sorted(outcomes.items()):
        print(f"  {key:12s} {'bit-identical' if identical else 'MISMATCH'}")
    assert all(outcomes.values()), outcomes


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_serving_beats_one_process_worker_1p5x(benchmark,
                                                        deep_workload):
    """Sharded pipeline serving >= 1.5x one-process-worker throughput on the
    deep workload; writes ``BENCH_pipeline.json``."""
    cores = _cores()
    if cores < STAGES + 1:
        pytest.skip(
            f"pipeline parallelism needs >= {STAGES + 1} cores "
            f"(stages + parent); this runner has {cores} — the regression "
            "gate warns (not fails) on the missing trajectory")
    model, requests = deep_workload

    def measure():
        one_proc, _ = _best_serving_time(
            model, requests,
            ServeConfig(max_batch=MAX_BATCH, workers="process"))
        pipelined, snapshot = _best_serving_time(
            model, requests,
            ServeConfig(max_batch=MAX_BATCH, pipeline_stages=STAGES))
        return one_proc, pipelined, snapshot

    one_proc_s, pipeline_s, snapshot = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    one_proc_rps = REQUESTS / one_proc_s
    pipeline_rps = REQUESTS / pipeline_s
    speedup = pipeline_rps / one_proc_rps
    print(f"\n[pipeline x{STAGES}] {pipeline_rps:.0f} samples/s vs "
          f"one process worker {one_proc_rps:.0f} samples/s "
          f"-> speedup {speedup:.2f}x")
    for worker in snapshot.workers:
        for stage in worker.stages:
            print(f"  stage {stage.index} "
                  f"(layers {stage.layer_start}..{stage.layer_stop - 1}): "
                  f"busy {stage.busy_s * 1e3:.1f} ms, "
                  f"bubble {stage.bubble_s * 1e3:.1f} ms, "
                  f"transport {stage.transport_s * 1e3:.1f} ms")

    path = write_bench_json("pipeline", {
        "stages": STAGES,
        "requests": REQUESTS,
        "hidden": HIDDEN,
        "depth": DEPTH,
        "cores": cores,
        "one_process_s": one_proc_s,
        "pipeline_s": pipeline_s,
        "one_process_rps": one_proc_rps,
        "pipeline_rps": pipeline_rps,
        "pipeline_speedup": speedup,
    })
    print(f"Trajectory written to {path}")

    assert speedup >= 1.5, (
        f"pipeline serving only {speedup:.2f}x faster than one process worker")
