"""Neural-network substrate for the network-level evaluation (Fig. 6(c)).

A from-scratch numpy implementation of everything the paper's accuracy study
needs: layers with backpropagation, ResNet-style and MobileNet-style
reference models, a synthetic image dataset standing in for ImageNet, a
training loop, the post-training-quantisation (PTQ) flow for INT8 / FP8
formats with injected CIM non-idealities, and a hardware-in-the-loop backend
that routes matrix products through actual AFPR-CIM macro models.
"""

from repro.nn.layers import (
    Parameter,
    Layer,
    Conv2d,
    Linear,
    BatchNorm2d,
    ReLU,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    Flatten,
)
from repro.nn.model import Model, Sequential, ResidualBlock, DepthwiseSeparableBlock
from repro.nn.functional import softmax, cross_entropy, accuracy, one_hot, im2col, col2im
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.data import SyntheticImageDataset, DatasetConfig, iterate_minibatches
from repro.nn.resnet import build_resnet_lite, resnet_lite_description
from repro.nn.mobilenet import build_mobilenet_lite, mobilenet_lite_description
from repro.nn.training import Trainer, TrainingHistory, evaluate_model
from repro.nn.quantize import (
    CIMNonidealities,
    extract_cim_nonidealities,
    FakeQuantAdapter,
    PTQResult,
    attach_adapters,
    restore_model,
    calibrate_adapters,
    evaluate_ptq,
    format_sweep,
)
from repro.nn.cim_backend import CIMMappedNetwork, CIMExecutionAdapter

__all__ = [
    "Parameter",
    "Layer",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Model",
    "Sequential",
    "ResidualBlock",
    "DepthwiseSeparableBlock",
    "softmax",
    "cross_entropy",
    "accuracy",
    "one_hot",
    "im2col",
    "col2im",
    "SGD",
    "Adam",
    "Optimizer",
    "SyntheticImageDataset",
    "DatasetConfig",
    "iterate_minibatches",
    "build_resnet_lite",
    "resnet_lite_description",
    "build_mobilenet_lite",
    "mobilenet_lite_description",
    "Trainer",
    "TrainingHistory",
    "evaluate_model",
    "CIMNonidealities",
    "extract_cim_nonidealities",
    "FakeQuantAdapter",
    "PTQResult",
    "attach_adapters",
    "restore_model",
    "calibrate_adapters",
    "evaluate_ptq",
    "format_sweep",
    "CIMMappedNetwork",
    "CIMExecutionAdapter",
]
