"""Unit tests for the RRAM device model (repro.rram.device)."""

import numpy as np
import pytest

from repro.rram import ConductanceLevels, RRAMDeviceModel, RRAMStatistics


class TestConductanceLevels:
    def test_default_window(self):
        levels = ConductanceLevels()
        assert levels.g_min == pytest.approx(1e-6)
        assert levels.g_max == pytest.approx(25e-6)
        assert levels.levels == 16

    def test_values_are_sorted(self):
        vals = ConductanceLevels().values
        assert np.all(np.diff(vals) > 0)
        assert len(vals) == 16

    def test_log_spacing(self):
        levels = ConductanceLevels(spacing="log")
        vals = levels.values
        ratios = vals[1:] / vals[:-1]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-9)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            ConductanceLevels(g_min=2e-6, g_max=1e-6)
        with pytest.raises(ValueError):
            ConductanceLevels(levels=1)
        with pytest.raises(ValueError):
            ConductanceLevels(spacing="cubic")

    def test_nearest_level_roundtrip(self):
        levels = ConductanceLevels()
        idx = np.arange(levels.levels)
        g = levels.level_to_conductance(idx)
        np.testing.assert_array_equal(levels.nearest_level(g), idx)

    def test_level_to_conductance_out_of_range(self):
        with pytest.raises(ValueError):
            ConductanceLevels().level_to_conductance(np.array([16]))

    def test_bits(self):
        assert ConductanceLevels(levels=16).bits == 4
        assert ConductanceLevels(levels=8).bits == 3


class TestStatisticsValidation:
    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            RRAMStatistics(programming_sigma=-0.1)

    def test_stuck_probability_bound(self):
        with pytest.raises(ValueError):
            RRAMStatistics(stuck_at_lrs_probability=0.6, stuck_at_hrs_probability=0.6)


class TestProgramming:
    def test_ideal_program_snaps_to_levels(self):
        device = RRAMDeviceModel()
        target = np.array([5e-6, 13e-6, 24e-6])
        achieved = device.program(target, ideal=True)
        levels = device.levels.values
        for g in achieved:
            assert np.min(np.abs(levels - g)) < 1e-12

    def test_noisy_program_close_to_target(self):
        device = RRAMDeviceModel(statistics=RRAMStatistics(programming_sigma=0.02,
                                                           stuck_at_lrs_probability=0.0,
                                                           stuck_at_hrs_probability=0.0))
        target = np.full(5000, 13e-6)
        achieved = device.program(target)
        # Mean within 1 %, spread close to the configured 2 %.
        assert np.mean(achieved) == pytest.approx(np.mean(device.program(target, ideal=True)),
                                                  rel=0.01)
        assert np.std(achieved) / np.mean(achieved) == pytest.approx(0.02, rel=0.2)

    def test_program_rejects_negative(self):
        with pytest.raises(ValueError):
            RRAMDeviceModel().program(np.array([-1e-6]))

    def test_stuck_faults_present_at_high_probability(self):
        stats = RRAMStatistics(programming_sigma=0.0,
                               stuck_at_lrs_probability=0.3,
                               stuck_at_hrs_probability=0.3)
        device = RRAMDeviceModel(statistics=stats, seed=1)
        achieved = device.program(np.full(2000, 13e-6))
        assert np.any(achieved == device.g_max)
        assert np.any(achieved == device.g_min)

    def test_programming_deterministic_with_seed(self):
        a = RRAMDeviceModel(seed=7).program(np.full(100, 10e-6))
        b = RRAMDeviceModel(seed=7).program(np.full(100, 10e-6))
        np.testing.assert_array_equal(a, b)


class TestReadEffects:
    def test_read_noise_zero_sigma_is_identity(self):
        device = RRAMDeviceModel(statistics=RRAMStatistics(read_noise_sigma=0.0))
        g = np.full(10, 10e-6)
        np.testing.assert_array_equal(device.read_noise(g), g)

    def test_read_noise_statistics(self):
        device = RRAMDeviceModel(statistics=RRAMStatistics(read_noise_sigma=0.01))
        g = np.full(20000, 10e-6)
        noisy = device.read_noise(g)
        assert np.std(noisy) / np.mean(noisy) == pytest.approx(0.01, rel=0.15)

    def test_drift_reduces_conductance(self):
        device = RRAMDeviceModel(statistics=RRAMStatistics(drift_coefficient=0.01))
        g = np.full(10, 20e-6)
        drifted = device.drift(g, elapsed_seconds=1e6)
        assert np.all(drifted < g)

    def test_drift_noop_for_fresh_devices(self):
        device = RRAMDeviceModel()
        g = np.full(10, 20e-6)
        np.testing.assert_array_equal(device.drift(g, 0.5), g)

    def test_drift_rejects_negative_time(self):
        with pytest.raises(ValueError):
            RRAMDeviceModel().drift(np.array([1e-6]), -1.0)

    def test_cell_current_ohms_law(self):
        device = RRAMDeviceModel()
        assert device.cell_current(2.0, 10e-6) == pytest.approx(20e-6)

    def test_conductance_for_weight_range(self):
        device = RRAMDeviceModel()
        g = device.conductance_for_weight(np.array([0.0, 0.5, 1.0]), weight_max=1.0)
        assert g[0] == pytest.approx(device.g_min)
        assert g[2] == pytest.approx(device.g_max)
        assert device.g_min < g[1] < device.g_max

    def test_on_off_ratio(self):
        assert RRAMDeviceModel().on_off_ratio == pytest.approx(25.0)
