"""Shared-memory ring transport between the service and its process workers.

``workers="process"`` historically pickled every batch into the worker's
executor pipe and pickled the logits back — two serialisations, chunked pipe
writes and reads, and three copies per batch of pure software overhead.
This module replaces that with ``multiprocessing.shared_memory`` rings:

* the parent owns two segments per worker — images in, logits out — each
  cut into a fixed number of equally-sized **slots**;
* a batch is written straight into a free request slot (one copy), the
  worker runs its plan on a zero-copy view of that slot and writes the
  logits into the matching response slot (one copy), and only the tiny
  ``(slot, shape)`` coordinates cross the executor pipe;
* the free-slot queue provides **backpressure**: a batch waits for a slot
  instead of growing an unbounded buffer;
* the parent creates and unlinks the segments, so ``service.close()``
  always removes them from ``/dev/shm`` — even when the worker process
  crashed mid-batch (attachment in the worker is excluded from its
  resource tracker precisely so a dying worker cannot unlink the parent's
  segments first).

Slot sizes are learned from the first served batch (which rides the pickle
path and doubles as the worker warm-up): ``max_batch`` rows of that batch's
row layout, so steady-state traffic is zero-copy while oversized one-off
requests transparently fall back to pickling.

**Integrity (optional):** with ``checksum=True`` every slot is prefixed by
a 16-byte header carrying the CRC32 and byte count of its payload,
computed at :meth:`SlotRing.write` and verified by :meth:`SlotRing.read`.
A mismatch raises :class:`IntegrityError`, which the serving layer
classifies as a corrupt (re-dispatchable) batch rather than a dead worker.
The check is off the hot path by default (``checksum=False`` keeps the
exact PR-4 slot geometry and zero extra work) and both sides of a ring
must agree on the flag — it is part of the attach coordinates.
"""

from __future__ import annotations

import struct
import zlib
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.injector import fire as _fault_fire

#: Per-slot integrity header: CRC32, reserved, payload byte count.
_HEADER = struct.Struct("<IIQ")
HEADER_NBYTES = _HEADER.size


class IntegrityError(RuntimeError):
    """A slot's payload failed its CRC32 check (bit-rot or torn write)."""


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    Python < 3.13 registers every attachment with the attaching process's
    resource tracker, which then unlinks the segment when that process
    exits — yanking it out from under the parent that owns it.  (Whether
    the worker shares the parent's tracker daemon or spawned its own
    depends on fork timing, so unregistering after the fact either
    double-removes the parent's entry or races the worker-tracker's exit
    cleanup.)  Registration is therefore suppressed for the attachment
    itself: the worker only ever *closes* its mapping; creating, tracking
    and unlinking stay with the parent that owns the segment.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class SlotRing:
    """One shared-memory segment cut into fixed-size array slots."""

    def __init__(self, slots: int, slot_nbytes: int,
                 segment: Optional[shared_memory.SharedMemory] = None,
                 checksum: bool = False) -> None:
        if slots < 1 or slot_nbytes < 1:
            raise ValueError("need at least one slot of at least one byte")
        self.slots = slots
        self.slot_nbytes = int(slot_nbytes)
        self.checksum = bool(checksum)
        #: Byte distance between slot starts (header + payload).
        self.slot_stride = self.slot_nbytes + (HEADER_NBYTES
                                               if self.checksum else 0)
        #: Fault-injection site prefix; when set, :meth:`write` fires
        #: ``<site>.write`` with the freshly written slot bytes *after*
        #: the CRC header is stored, so injected corruption is exactly
        #: the bit-rot the read-side check is meant to catch.
        self.fault_site: Optional[str] = None
        #: Transport counters for this process's side of the ring:
        #: cumulative slot writes and bytes copied through :meth:`write`.
        #: The metrics exposition reports them as shm transport gauges.
        self.writes = 0
        self.bytes_written = 0
        self.segment = (segment if segment is not None
                        else shared_memory.SharedMemory(
                            create=True, size=slots * self.slot_stride))

    @classmethod
    def attach(cls, name: str, slots: int, slot_nbytes: int,
               checksum: bool = False) -> "SlotRing":
        """Worker-side view of a parent-owned ring (never unlinks it).

        The segment must be large enough for the advertised geometry: a
        respawned worker attaching stale coordinates (a ring the parent
        has already replaced) would otherwise read/write out of bounds of
        the smaller segment, so a size mismatch fails loudly here and the
        serving layer treats it like any other broken-transport fault.
        """
        segment = attach_segment(name)
        stride = int(slot_nbytes) + (HEADER_NBYTES if checksum else 0)
        needed = slots * stride
        if segment.size < needed:
            segment.close()
            raise ValueError(
                f"segment {name!r} holds {segment.size} bytes but the "
                f"advertised ring geometry needs {needed} "
                f"({slots} slots x {slot_nbytes} bytes"
                f"{' + checksum headers' if checksum else ''}); stale "
                "attach coordinates?"
            )
        return cls(slots, slot_nbytes, segment=segment, checksum=checksum)

    @property
    def name(self) -> str:
        """The segment name (its ``/dev/shm`` entry)."""
        return self.segment.name

    def fits(self, nbytes: int) -> bool:
        """Whether an array of ``nbytes`` fits one slot."""
        return nbytes <= self.slot_nbytes

    def view(self, slot: int, shape: Tuple[int, ...],
             dtype=np.float64) -> np.ndarray:
        """A zero-copy array view of one slot's payload."""
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} out of range 0..{self.slots - 1}")
        offset = slot * self.slot_stride
        if self.checksum:
            offset += HEADER_NBYTES
        view = np.ndarray(shape, dtype=dtype,
                          buffer=self.segment.buf[offset:offset + self.slot_nbytes])
        return view

    def write(self, slot: int, array: np.ndarray) -> None:
        """Copy ``array`` into ``slot`` (the transport's single copy).

        With ``checksum`` enabled the payload's CRC32 and byte count are
        stored into the slot header after the copy; :meth:`read` on the
        other side verifies them.
        """
        if not self.fits(array.nbytes):
            raise ValueError(
                f"array of {array.nbytes} bytes exceeds the "
                f"{self.slot_nbytes}-byte slot"
            )
        view = self.view(slot, array.shape, array.dtype)
        view[...] = array
        if self.checksum:
            self._write_header(slot, view)
        if self.fault_site is not None:
            _fault_fire(f"{self.fault_site}.write", view)
        self.writes += 1
        self.bytes_written += int(array.nbytes)

    def read(self, slot: int, shape: Tuple[int, ...],
             dtype=np.float64) -> np.ndarray:
        """A payload view of one slot, CRC-verified when checksums are on.

        Raises :class:`IntegrityError` when the stored header disagrees
        with the slot bytes (bit-rot, torn write) or with the requested
        geometry (a stale or mangled coordinate message).
        """
        view = self.view(slot, shape, dtype)
        if self.checksum:
            stored_crc, _, stored_nbytes = _HEADER.unpack_from(
                self.segment.buf, slot * self.slot_stride)
            if stored_nbytes != view.nbytes:
                raise IntegrityError(
                    f"slot {slot} header advertises {stored_nbytes} bytes "
                    f"but the requested view covers {view.nbytes}")
            actual_crc = zlib.crc32(view.reshape(-1).view(np.uint8).data)
            if actual_crc != stored_crc:
                raise IntegrityError(
                    f"slot {slot} payload CRC mismatch: stored "
                    f"{stored_crc:#010x}, computed {actual_crc:#010x} "
                    f"over {view.nbytes} bytes")
        return view

    def _write_header(self, slot: int, view: np.ndarray) -> None:
        crc = zlib.crc32(view.reshape(-1).view(np.uint8).data)
        _HEADER.pack_into(self.segment.buf, slot * self.slot_stride,
                          crc, 0, view.nbytes)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself stays)."""
        try:
            self.segment.close()
        except BufferError:  # a live view still references the buffer
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (owner side, idempotent)."""
        try:
            self.segment.unlink()
        except FileNotFoundError:
            pass


class ShmChannel:
    """The parent-owned request/response ring pair of one process worker."""

    def __init__(self, slots: int, request_slot_nbytes: int,
                 response_slot_nbytes: int, checksum: bool = False) -> None:
        self.requests = SlotRing(slots, request_slot_nbytes,
                                 checksum=checksum)
        try:
            self.responses = SlotRing(slots, response_slot_nbytes,
                                      checksum=checksum)
        except Exception:
            self.requests.close()
            self.requests.unlink()
            raise
        self.slots = slots
        self.checksum = bool(checksum)

    @property
    def segment_names(self) -> List[str]:
        """Names of both segments (what the unlink tests check)."""
        return [self.requests.name, self.responses.name]

    def describe(self) -> Tuple[str, str, int, int, int, bool]:
        """The attach coordinates shipped to the worker process."""
        return (self.requests.name, self.responses.name, self.slots,
                self.requests.slot_nbytes, self.responses.slot_nbytes,
                self.checksum)

    def transport_counters(self) -> Dict[str, int]:
        """Cumulative parent-side slot writes and bytes through both rings.

        Only the parent's copies are counted (batch in via ``requests``;
        the worker writes ``responses`` in its own process), which is
        exactly the serving process's shm transport cost.
        """
        return {
            "request_writes": self.requests.writes,
            "request_bytes": self.requests.bytes_written,
            "response_writes": self.responses.writes,
            "response_bytes": self.responses.bytes_written,
        }

    def close(self, unlink: bool = True) -> None:
        """Close the mappings and (by default) unlink both segments."""
        for ring in (self.requests, self.responses):
            ring.close()
            if unlink:
                ring.unlink()


def segment_exists(name: str) -> bool:
    """Whether a shared-memory segment of this name still exists."""
    try:
        segment = attach_segment(name)
    except FileNotFoundError:
        return False
    segment.close()
    return True
