#!/usr/bin/env python3
"""Train a CNN and run it on every execution backend of the registry.

This is the network-level workflow behind Fig. 6(c), routed through the
unified execution engine (:mod:`repro.exec`):

1. train a small ResNet-style CNN (FP32, numpy) on the synthetic image task,
2. evaluate post-training quantisation to INT8 / FP8 E3M4 / FP8 E2M5 with
   the CIM non-idealities extracted from the macro model (the ``fast_noise``
   backend — the fast, lumped path used for the full accuracy study),
3. run the same network hardware-in-the-loop on the ``analog`` backend —
   FP-DAC, crossbar, FP-ADC, routing adder — batch-vectorised over the
   minibatch, and compare accuracy and simulator throughput per backend.

Run with::

    python examples/cnn_on_cim.py
"""

import time

import numpy as np

from repro.core import MacroConfig
from repro.exec import compare_backends, run_ptq_sweep
from repro.nn import (
    DatasetConfig,
    SGD,
    SyntheticImageDataset,
    Trainer,
    build_resnet_lite,
    evaluate_model,
    extract_cim_nonidealities,
)
from repro.rram.device import RRAMStatistics


def main() -> None:
    rng_seed = 7
    t0 = time.time()

    # --- 1. Train the FP32 reference network ---------------------------
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=8, image_size=16,
                                                  noise_sigma=0.3, seed=rng_seed))
    x_train, y_train, x_test, y_test = dataset.train_test_split(800, 400)
    model = build_resnet_lite(num_classes=8, stage_widths=(8, 16), blocks_per_stage=1,
                              seed=rng_seed)
    trainer = Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32)
    trainer.fit(x_train, y_train, epochs=4)
    fp32_accuracy = evaluate_model(model, x_test, y_test)
    print(f"[{time.time() - t0:5.1f}s] FP32 ResNet-lite test accuracy: {fp32_accuracy:.3f} "
          f"({model.count_parameters()} parameters)")

    # --- 2. PTQ with macro-extracted non-idealities --------------------
    nonidealities = extract_cim_nonidealities(MacroConfig(), seed=rng_seed)
    print(f"[{time.time() - t0:5.1f}s] extracted CIM MAC noise sigma: "
          f"{nonidealities.mac_noise_sigma:.3%}")
    results = run_ptq_sweep(model, x_train[:96], x_test, y_test,
                            nonidealities=nonidealities, seed=rng_seed)
    print("\nPost-training quantisation (fast_noise backend):")
    for name, result in results.items():
        print(f"  {name:10s}  accuracy {result.accuracy:.3f}  "
              f"delta vs FP32 {result.accuracy_delta:+.3f}")

    # --- 3. All backends side by side, analog hardware-in-the-loop -----
    quiet = RRAMStatistics(programming_sigma=0.01, read_noise_sigma=0.005,
                           stuck_at_lrs_probability=0.0, stuck_at_hrs_probability=0.0)
    macro_config = MacroConfig(device_statistics=quiet)
    subset = slice(0, 120)
    reports = compare_backends(
        model, x_test[subset], y_test[subset],
        calibration=x_train[:16],
        macro_config=macro_config,
        nonidealities=nonidealities,
        max_mapped_layers=2,
    )
    print("\nExecution backends (first 2 conv layers on macros for `analog`):")
    for name, report in reports.items():
        line = (f"  {name:12s} accuracy {report.accuracy:.3f}  "
                f"{report.samples_per_second:9.1f} samples/s")
        if report.conversions:
            latency = report.conversions * macro_config.conversion_time
            line += (f"  {report.conversions} conversions "
                     f"({latency * 1e6:.1f} us analog latency)")
        print(line)

    print(f"\n[{time.time() - t0:5.1f}s] done")


if __name__ == "__main__":
    main()
