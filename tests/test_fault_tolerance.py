"""Fault-tolerance, SLO-class and chaos tests for the serving layer.

The contracts under test (see the PR's tentpole):

* a worker *death* (SIGKILLed process worker, dead pipeline stage) is
  classified apart from request-level failures, its in-flight batches are
  re-dispatched to surviving replicas up to ``max_retries``, and the dead
  worker respawns in the background from the cached plan payload;
* the on-disk plan cache (:class:`repro.exec.plan.PlanCache`) makes cold
  starts and respawns recompile-free, keyed by a model/backend/context
  fingerprint;
* malformed requests are rejected at *admission* (submit time), so one
  bad client can never fail the requests it would have co-batched with;
* SLO priority classes shorten the flush deadline of the batches that
  carry them and show up as class-tagged latency percentiles;
* a kill-storm (repeated SIGKILLs during traffic) produces zero
  client-visible failures and a pool respawned to full strength.
"""

import asyncio
import os
import signal

import numpy as np
import pytest

from repro.exec import run_model
from repro.exec.backend import ExecutionContext
from repro.exec.plan import PlanCache, plan_fingerprint
from repro.nn import DatasetConfig, SGD, Sequential, SyntheticImageDataset, Trainer
from repro.nn.layers import Flatten, Linear, ReLU
from repro.serve import InferenceService, ServeConfig
from repro.serve.batcher import (
    DEFAULT_PRIORITY,
    DynamicBatcher,
    Request,
    scatter_results,
)
from repro.serve.cli import build_serve_parser, parse_class_map
from repro.serve.loadgen import assign_priorities, run_loadtest
from repro.serve.scheduler import (
    NoAliveWorkersError,
    build_worker_states,
    create_scheduler,
)


def run_async(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def trained_setup():
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=4, image_size=10,
                                                  noise_sigma=0.3, seed=7))
    x_train, y_train, x_test, _ = dataset.train_test_split(96, 48)
    model = Sequential(
        Flatten(),
        Linear(300, 32, rng=np.random.default_rng(0)),
        ReLU(),
        Linear(32, 4, rng=np.random.default_rng(1)),
    )
    Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32).fit(
        x_train, y_train, epochs=1
    )
    return model, x_test


async def _wait_for_recovery(service, timeout_s: float = 20.0) -> bool:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout_s
    while not service.pool_recovered():
        if loop.time() >= deadline:
            return False
        await asyncio.sleep(0.02)
    return True


def _first_pid(service) -> int:
    pids = service.process_worker_pids()
    index = sorted(pids)[0]
    return pids[index][0]


class TestPlanCache:
    def test_fingerprint_separates_recipes(self, trained_setup):
        model, _ = trained_setup
        context = ExecutionContext()
        base = plan_fingerprint(model, "ideal", {}, context)
        assert base == plan_fingerprint(model, "ideal", {}, context)
        assert base != plan_fingerprint(model, "fake_quant", {}, context)
        assert base != plan_fingerprint(model, "ideal", {"option": 1}, context)
        other_model = Sequential(Flatten(),
                                 Linear(300, 4, rng=np.random.default_rng(2)))
        assert base != plan_fingerprint(other_model, "ideal", {}, context)

    def test_store_load_roundtrip_and_counters(self, tmp_path):
        cache = PlanCache(str(tmp_path))
        assert cache.load("deadbeef") is None
        assert cache.misses == 1
        cache.store("deadbeef", b"pickled-plan")
        assert cache.load("deadbeef") == b"pickled-plan"
        assert cache.hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = PlanCache(str(tmp_path))
        with open(cache.path_for("key"), "wb"):
            pass  # zero-byte entry: torn write / corrupt cache
        assert cache.load("key") is None
        assert cache.misses == 1

    def test_cold_start_hits_cache_and_serves_identically(self, trained_setup,
                                                          tmp_path):
        # Service A compiles and persists the plan; service B (a fresh
        # instance, same recipe) must hit the cache and serve the same
        # logits without recompiling.
        model, x_test = trained_setup
        direct = run_model(model, x_test[:8], backend="ideal", batch_size=8)
        config = ServeConfig(max_batch=8, workers="process",
                             plan_cache=str(tmp_path))

        async def one_run():
            service = InferenceService(model, config)
            await service.start()
            served = await service.submit(x_test[:8])
            snapshot = service.metrics_snapshot()
            await service.stop()
            return served, snapshot

        first, first_snap = run_async(one_run())
        second, second_snap = run_async(one_run())
        assert first_snap.plan_cache_misses >= 1
        assert second_snap.plan_cache_hits >= 1
        assert second_snap.plan_cache_misses == 0
        assert np.array_equal(first, direct.logits)
        assert np.array_equal(second, direct.logits)


class TestAdmissionControl:
    def test_bad_client_cannot_fail_good_cobatched_clients(self, trained_setup):
        # The satellite-1 regression: one malformed client among N good
        # concurrent ones is rejected synchronously at submit; every good
        # client still gets its logits.
        model, x_test = trained_setup

        async def scenario():
            service = InferenceService(model, ServeConfig(max_batch=8,
                                                          max_wait_ms=10.0))
            await service.start()
            good = [service.submit_nowait(x_test[i]) for i in range(6)]
            with pytest.raises(ValueError, match="input signature"):
                service.submit_nowait(np.zeros((3, 16, 16)))
            more = [service.submit_nowait(x_test[i]) for i in range(6, 10)]
            results = await asyncio.gather(*(good + more))
            await service.stop()
            return results

        results = run_async(scenario())
        assert len(results) == 10
        assert all(r.shape == (1, 4) for r in results)

    def test_signature_locked_from_calibration_batch(self, trained_setup):
        # With a calibration batch the signature is known before the first
        # request, so even the *first* submit of a wrong shape is rejected.
        model, x_test = trained_setup
        config = ServeConfig(
            max_batch=8,
            context=ExecutionContext(calibration=x_test[:4]))

        async def scenario():
            service = InferenceService(model, config)
            await service.start()
            with pytest.raises(ValueError, match="input signature"):
                service.submit_nowait(np.zeros((3, 16, 16)))
            healthy = await service.submit(x_test[0])
            await service.stop()
            return healthy

        assert run_async(scenario()).shape == (1, 4)

    def test_unknown_priority_class_rejected(self, trained_setup):
        model, x_test = trained_setup
        config = ServeConfig(max_batch=8,
                             priority_classes={"interactive": 0.5})

        async def scenario():
            service = InferenceService(model, config)
            await service.start()
            with pytest.raises(ValueError, match="priority"):
                service.submit_nowait(x_test[0], priority="no-such-class")
            tagged = await service.submit(x_test[0], priority="interactive")
            default = await service.submit(x_test[1])  # always admitted
            await service.stop()
            return tagged, default

        tagged, default = run_async(scenario())
        assert tagged.shape == (1, 4) and default.shape == (1, 4)


class TestScatterGuard:
    def test_row_count_mismatch_is_descriptive(self):
        async def scenario():
            loop = asyncio.get_running_loop()
            batch = [
                Request(images=np.zeros((2, 3, 4, 4)),
                        future=loop.create_future(), arrival=0.0),
                Request(images=np.zeros((1, 3, 4, 4)),
                        future=loop.create_future(), arrival=0.0),
            ]
            with pytest.raises(ValueError, match="3 request rows"):
                scatter_results(batch, np.zeros((2, 4)))  # 2 rows for 3
            # No future may have resolved from the misaligned logits.
            assert not any(request.future.done() for request in batch)
            scatter_results(batch, np.zeros((3, 4)))
            assert all(request.future.done() for request in batch)

        run_async(scenario())


class TestSloBatching:
    def test_class_wait_budget_shortens_deadline(self):
        batcher = DynamicBatcher(asyncio.Queue(), max_batch=8,
                                 max_wait_s=0.010,
                                 class_wait_s={"interactive": 0.001})
        assert batcher.wait_budget_s("interactive") == 0.001
        assert batcher.wait_budget_s(DEFAULT_PRIORITY) == 0.010
        standard = Request(images=np.zeros((1, 3, 4, 4)), future=None,
                           arrival=100.0)
        interactive = Request(images=np.zeros((1, 3, 4, 4)), future=None,
                              arrival=100.002, priority="interactive")
        # The interactive request joins later but still pulls the flush
        # deadline forward: min over per-request budgets.
        assert batcher._deadline([standard]) == pytest.approx(100.010)
        assert batcher._deadline([standard, interactive]) == pytest.approx(
            100.003)

    def test_class_tagged_latency_percentiles(self, trained_setup):
        model, x_test = trained_setup
        config = ServeConfig(max_batch=4, max_wait_ms=5.0,
                             priority_classes={"interactive": 0.5,
                                               "batch": 20.0})

        async def scenario():
            service = InferenceService(model, config)
            await service.start()
            futures = [service.submit(x_test[i], priority="interactive")
                       for i in range(3)]
            futures += [service.submit(x_test[i], priority="batch")
                        for i in range(3, 6)]
            futures += [service.submit(x_test[6])]
            await asyncio.gather(*futures)
            snapshot = service.metrics_snapshot()
            await service.stop()
            return snapshot

        snapshot = run_async(scenario())
        assert set(snapshot.class_latency_ms) >= {"interactive", "batch",
                                                  DEFAULT_PRIORITY}
        for stats in snapshot.class_latency_ms.values():
            assert stats["p99_ms"] >= stats["p50_ms"] >= 0.0
            assert stats["requests"] >= 1
        assert "interactive" in snapshot.render()

    def test_assign_priorities_is_seeded_and_weighted(self):
        classes = assign_priorities({"interactive": 1.0, "batch": 3.0},
                                    400, seed=11)
        assert classes == assign_priorities({"interactive": 1.0,
                                             "batch": 3.0}, 400, seed=11)
        share = classes.count("interactive") / len(classes)
        assert 0.1 < share < 0.4  # ~0.25 by weight
        with pytest.raises(ValueError, match="weights"):
            assign_priorities({"a": -1.0}, 4)


class TestSchedulerLiveness:
    def test_policies_skip_dead_workers(self):
        for policy in ("round_robin", "least_loaded"):
            states = build_worker_states(3)
            scheduler = create_scheduler(policy, states)
            states[1].alive = False
            picks = [scheduler.select(1).index for _ in range(6)]
            assert 1 not in picks, policy
            for state in states:
                state.alive = False
            with pytest.raises(NoAliveWorkersError):
                scheduler.select(1)


class TestWorkerDeathRecovery:
    def test_killed_worker_batches_redispatch_and_respawn(self, trained_setup,
                                                          tmp_path):
        # One SIGKILLed process worker: its batches re-dispatch to the
        # survivor (bit-identical logits on a deterministic backend), the
        # dead slot respawns from the cached plan, and the metrics record
        # the whole episode.
        model, x_test = trained_setup
        direct = run_model(model, x_test[:8], backend="ideal", batch_size=8)

        async def scenario():
            service = InferenceService(model, ServeConfig(
                max_batch=8, num_workers=2, workers="process",
                policy="round_robin", plan_cache=str(tmp_path)))
            await service.start()
            await service.submit(x_test[:8])  # warm both transports
            await service.submit(x_test[:8])
            os.kill(_first_pid(service), signal.SIGKILL)
            served = [await service.submit(x_test[:8]) for _ in range(4)]
            recovered = await _wait_for_recovery(service)
            snapshot = service.metrics_snapshot()
            alive = service.alive_worker_count()
            await service.stop()
            return served, recovered, snapshot, alive

        served, recovered, snapshot, alive = run_async(scenario())
        assert all(np.array_equal(batch, direct.logits) for batch in served)
        assert recovered and alive == 2
        assert snapshot.worker_deaths >= 1
        assert snapshot.retried_batches >= 1
        assert snapshot.respawns >= 1
        assert snapshot.recovery_times_s
        assert "re-dispatched" in snapshot.render()

    def test_fail_fast_policy_fails_but_still_respawns(self, trained_setup):
        model, x_test = trained_setup

        async def scenario():
            service = InferenceService(model, ServeConfig(
                max_batch=8, num_workers=1, workers="process",
                retry_policy="fail_fast"))
            await service.start()
            await service.submit(x_test[:8])
            os.kill(_first_pid(service), signal.SIGKILL)
            with pytest.raises(Exception):
                await service.submit(x_test[:8])
            recovered = await _wait_for_recovery(service)
            healthy = await service.submit(x_test[:8])
            await service.stop()
            return recovered, healthy

        recovered, healthy = run_async(scenario())
        assert recovered
        assert healthy.shape == (8, 4)

    def test_single_worker_pool_waits_out_respawn(self, trained_setup):
        # Every worker dead + respawn pending: placement must wait for the
        # respawn instead of failing the batch (zero-failure contract).
        model, x_test = trained_setup
        direct = run_model(model, x_test[:8], backend="ideal", batch_size=8)

        async def scenario():
            service = InferenceService(model, ServeConfig(
                max_batch=8, num_workers=1, workers="process"))
            await service.start()
            await service.submit(x_test[:8])
            os.kill(_first_pid(service), signal.SIGKILL)
            served = await service.submit(x_test[:8])
            recovered = await _wait_for_recovery(service)
            await service.stop()
            return served, recovered

        served, recovered = run_async(scenario())
        assert np.array_equal(served, direct.logits)
        assert recovered

    def test_pipeline_stage_death_redispatches(self, trained_setup):
        # The pipeline variant: SIGKILL one stage process; the batch
        # re-dispatches once the respawned pipeline is up and the logits
        # stay bit-identical on the deterministic backend.
        model, x_test = trained_setup
        direct = run_model(model, x_test[:8], backend="ideal", batch_size=8)

        async def scenario():
            service = InferenceService(model, ServeConfig(
                max_batch=8, num_workers=1, pipeline_stages=2,
                max_retries=4))
            await service.start()
            await service.submit(x_test[:8])
            pids = service.process_worker_pids()[0]
            assert len(pids) == 2  # one process per stage
            os.kill(pids[0], signal.SIGKILL)
            served = [await service.submit(x_test[:8]) for _ in range(2)]
            recovered = await _wait_for_recovery(service)
            snapshot = service.metrics_snapshot()
            await service.stop()
            return served, recovered, snapshot

        served, recovered, snapshot = run_async(scenario())
        assert all(np.array_equal(batch, direct.logits) for batch in served)
        assert recovered
        assert snapshot.worker_deaths >= 1
        assert snapshot.respawns >= 1


class TestChaosScenarios:
    def test_kill_storm_zero_client_failures(self, trained_setup, tmp_path):
        # The acceptance chaos drive: SIGKILL random process workers while
        # traffic is in flight.  With retries enabled there must be zero
        # client-visible failures and the pool must respawn to the
        # configured replica count.
        model, x_test = trained_setup
        config = ServeConfig(max_batch=8, num_workers=2, workers="process",
                             plan_cache=str(tmp_path), max_retries=4)
        result = run_loadtest(model, x_test, config, pattern="uniform",
                              rate_rps=600.0, num_requests=90, seed=3,
                              scenario="kill-storm", kills=2,
                              kill_interval_s=0.04)
        chaos = result.chaos
        assert chaos["kills"] >= 1
        assert result.failures == 0
        assert chaos["recovered"] and chaos["alive_workers"] == 2
        assert result.snapshot.worker_deaths >= 1
        assert result.snapshot.respawns >= 1

    def test_overload_scenario_sheds_instead_of_failing(self, trained_setup):
        model, x_test = trained_setup
        config = ServeConfig(max_batch=8, queue_capacity=4)
        result = run_loadtest(model, x_test, config, pattern="uniform",
                              rate_rps=1000.0, num_requests=64, seed=0,
                              time_scale=0.0, scenario="overload")
        assert result.chaos["scenario"] == "overload"
        assert result.snapshot.dropped > 0
        # Every failure is an admission drop — no served request failed.
        assert result.failures == result.snapshot.dropped

    def test_unknown_scenario_rejected(self, trained_setup):
        model, x_test = trained_setup
        with pytest.raises(ValueError, match="scenario"):
            run_loadtest(model, x_test, ServeConfig(), scenario="lightning")


class TestAutoscaling:
    def test_pool_scales_up_under_backlog_and_back_down(self, trained_setup):
        model, x_test = trained_setup

        async def scenario():
            service = InferenceService(model, ServeConfig(
                max_batch=2, max_wait_ms=0.5, num_workers=1,
                autoscale=True, min_workers=1, max_workers=3,
                autoscale_interval_ms=2.0, scale_down_idle_ticks=2))
            await service.start()
            futures = [service.submit_nowait(x_test[i % len(x_test)])
                       for i in range(256)]
            await asyncio.gather(*futures)
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 10.0
            while (service.alive_worker_count() > 1
                   and loop.time() < deadline):
                await asyncio.sleep(0.02)
            # The pool still serves correctly after scaling back down.
            healthy = await service.submit(x_test[0])
            snapshot = service.metrics_snapshot()
            alive = service.alive_worker_count()
            await service.stop()
            return snapshot, alive, healthy

        snapshot, alive, healthy = run_async(scenario())
        assert snapshot.scale_up_events >= 1
        assert snapshot.scale_down_events >= 1
        assert alive == 1
        assert healthy.shape == (1, 4)


class TestCliWiring:
    def test_parse_class_map(self):
        assert parse_class_map("interactive=0.5,batch=20", "--x") == {
            "interactive": 0.5, "batch": 20.0}
        with pytest.raises(SystemExit):
            parse_class_map("interactive", "--x")
        with pytest.raises(SystemExit):
            parse_class_map("a=fast", "--x")

    def test_loadtest_parser_accepts_chaos_flags(self):
        parser = build_serve_parser("loadtest")
        args = parser.parse_args([
            "--scenario", "kill-storm", "--kills", "2",
            "--kill-interval-ms", "25", "--retry-policy", "redispatch",
            "--max-retries", "3", "--plan-cache", "/tmp/plans",
            "--priority-classes", "interactive=0.5,batch=20",
            "--priority-mix", "interactive=0.3,batch=0.7",
            "--autoscale", "--min-workers", "1", "--max-workers", "4",
        ])
        assert args.scenario == "kill-storm"
        assert args.kills == 2
        assert args.max_retries == 3
        assert args.autoscale and args.max_workers == 4

    def test_serve_parser_has_fault_tolerance_flags(self):
        args = build_serve_parser("serve").parse_args(
            ["--no-respawn", "--retry-policy", "fail_fast"])
        assert args.no_respawn and args.retry_policy == "fail_fast"
