"""Tests for model containers, optimisers, the dataset and the training loop."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    DatasetConfig,
    DepthwiseSeparableBlock,
    Linear,
    ReLU,
    ResidualBlock,
    SGD,
    Sequential,
    SyntheticImageDataset,
    Trainer,
    accuracy,
    build_mobilenet_lite,
    build_resnet_lite,
    cross_entropy,
    evaluate_model,
    iterate_minibatches,
    one_hot,
    softmax,
)


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.standard_normal((6, 10)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_softmax_numerical_stability(self):
        probs = softmax(np.array([[1000.0, 1001.0]]))
        assert np.all(np.isfinite(probs))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.abs(grad).max() < 1e-6

    def test_cross_entropy_gradient_numerical(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((4, 5))
        labels = np.array([0, 2, 4, 1])
        _, grad = cross_entropy(logits, labels)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for idx in np.ndindex(logits.shape):
            plus = logits.copy(); plus[idx] += eps
            minus = logits.copy(); minus[idx] -= eps
            numeric[idx] = (cross_entropy(plus, labels)[0] - cross_entropy(minus, labels)[0]) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_one_hot(self):
        oh = one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(oh, [[1, 0, 0], [0, 0, 1]])
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)


class TestContainers:
    def test_sequential_forward_backward(self):
        rng = np.random.default_rng(2)
        model = Sequential(Linear(8, 16, rng=rng), ReLU(), Linear(16, 4, rng=rng))
        x = rng.standard_normal((3, 8))
        out = model.forward(x, training=True)
        assert out.shape == (3, 4)
        grad = model.backward(np.ones((3, 4)))
        assert grad.shape == (3, 8)

    def test_parameter_collection(self):
        model = Sequential(Linear(8, 16), ReLU(), Linear(16, 4))
        assert len(model.parameters()) == 4
        assert model.count_parameters() == 8 * 16 + 16 + 16 * 4 + 4

    def test_matmul_layers_enumeration(self):
        model = build_resnet_lite(num_classes=4, stage_widths=(4, 8), blocks_per_stage=1)
        matmuls = model.matmul_layers()
        assert all(layer.is_matmul_layer for layer in matmuls)
        assert len(matmuls) >= 5

    def test_zero_grad(self):
        model = Sequential(Linear(4, 2))
        x = np.ones((1, 4))
        model.forward(x, training=True)
        model.backward(np.ones((1, 2)))
        assert np.any(model.parameters()[0].grad != 0)
        model.zero_grad()
        assert np.all(model.parameters()[0].grad == 0)

    def test_residual_block_shapes(self):
        rng = np.random.default_rng(3)
        block = ResidualBlock(4, 8, stride=2, rng=rng)
        out = block.forward(np.ones((2, 4, 8, 8)), training=True)
        assert out.shape == (2, 8, 4, 4)
        grad = block.backward(np.ones((2, 8, 4, 4)))
        assert grad.shape == (2, 4, 8, 8)

    def test_residual_block_identity_path(self):
        block = ResidualBlock(4, 4, stride=1)
        assert block.projection is None

    def test_depthwise_block_shapes(self):
        block = DepthwiseSeparableBlock(4, 8, stride=2)
        out = block.forward(np.ones((2, 4, 8, 8)), training=True)
        assert out.shape == (2, 8, 4, 4)
        grad = block.backward(np.ones((2, 8, 4, 4)))
        assert grad.shape == (2, 4, 8, 8)

    def test_reference_models_forward(self):
        resnet = build_resnet_lite(num_classes=7, stage_widths=(4, 8), blocks_per_stage=1)
        mobilenet = build_mobilenet_lite(num_classes=7, widths=(4, 8))
        x = np.random.default_rng(4).standard_normal((2, 3, 16, 16))
        assert resnet.forward(x).shape == (2, 7)
        assert mobilenet.forward(x).shape == (2, 7)

    def test_empty_sequential_rejected(self):
        with pytest.raises(ValueError):
            Sequential()


class TestOptimisers:
    def test_sgd_reduces_quadratic_loss(self):
        rng = np.random.default_rng(5)
        layer = Linear(4, 1, rng=rng)
        target_w = rng.standard_normal((4, 1))
        optimizer = SGD(layer.parameters(), learning_rate=0.1, momentum=0.9)
        x = rng.standard_normal((64, 4))
        y = x @ target_w
        losses = []
        for _ in range(100):
            optimizer.zero_grad()
            pred = layer.forward(x, training=True)
            grad = 2 * (pred - y) / len(x)
            losses.append(float(np.mean((pred - y) ** 2)))
            layer.backward(grad)
            optimizer.step()
        assert losses[-1] < losses[0] * 0.01

    def test_adam_reduces_quadratic_loss(self):
        rng = np.random.default_rng(6)
        layer = Linear(4, 1, rng=rng)
        target_w = rng.standard_normal((4, 1))
        optimizer = Adam(layer.parameters(), learning_rate=0.05)
        x = rng.standard_normal((64, 4))
        y = x @ target_w
        first = last = None
        for step in range(200):
            optimizer.zero_grad()
            pred = layer.forward(x, training=True)
            loss = float(np.mean((pred - y) ** 2))
            first = loss if first is None else first
            last = loss
            layer.backward(2 * (pred - y) / len(x))
            optimizer.step()
        assert last < first * 0.05

    def test_weight_decay_shrinks_weights(self):
        layer = Linear(4, 4)
        layer.weight.value = np.ones((4, 4))
        optimizer = SGD(layer.parameters(), learning_rate=0.1, momentum=0.0, weight_decay=1.0)
        optimizer.zero_grad()
        optimizer.step()
        assert np.all(np.abs(layer.weight.value) < 1.0)

    def test_invalid_hyperparameters(self):
        layer = Linear(2, 2)
        with pytest.raises(ValueError):
            SGD(layer.parameters(), learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(layer.parameters(), momentum=1.5)
        with pytest.raises(ValueError):
            Adam(layer.parameters(), learning_rate=-1.0)
        with pytest.raises(ValueError):
            SGD([])


class TestDataset:
    def test_shapes_and_labels(self):
        dataset = SyntheticImageDataset(DatasetConfig(num_classes=5, image_size=12))
        images, labels = dataset.generate(50)
        assert images.shape == (50, 3, 12, 12)
        assert labels.shape == (50,)
        assert labels.min() >= 0 and labels.max() < 5

    def test_class_consistency(self):
        """Samples of the same class are more alike than different classes."""
        dataset = SyntheticImageDataset(DatasetConfig(num_classes=4, noise_sigma=0.05))
        same = [dataset.sample(0) for _ in range(10)]
        other = [dataset.sample(1) for _ in range(10)]
        mean_same = np.mean([np.linalg.norm(a - b) for a, b in zip(same[:-1], same[1:])])
        mean_cross = np.mean([np.linalg.norm(a - b) for a, b in zip(same, other)])
        assert mean_cross > mean_same

    def test_train_test_split_disjoint_draws(self):
        dataset = SyntheticImageDataset(DatasetConfig(num_classes=3))
        x_train, y_train, x_test, y_test = dataset.train_test_split(20, 10)
        assert x_train.shape[0] == 20 and x_test.shape[0] == 10

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DatasetConfig(num_classes=1)
        with pytest.raises(ValueError):
            DatasetConfig(channels=2)

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset().sample(99)

    def test_minibatches_cover_dataset(self):
        x = np.arange(10)[:, None] * np.ones((10, 3))
        y = np.arange(10)
        seen = []
        for bx, by in iterate_minibatches(x, y, batch_size=3, shuffle=False):
            seen.extend(by.tolist())
        assert seen == list(range(10))

    def test_minibatch_validation(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((3, 2)), np.zeros(4), 2))


class TestTrainer:
    def test_training_improves_accuracy(self):
        dataset = SyntheticImageDataset(DatasetConfig(num_classes=4, noise_sigma=0.15, seed=1))
        x_train, y_train, x_test, y_test = dataset.train_test_split(240, 120)
        model = build_resnet_lite(num_classes=4, stage_widths=(4, 8), blocks_per_stage=1)
        before = evaluate_model(model, x_test, y_test)
        trainer = Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32)
        history = trainer.fit(x_train, y_train, x_test, y_test, epochs=2)
        assert history.epochs == 2
        assert history.final_test_accuracy > max(before, 0.5)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_invalid_epochs(self):
        model = Sequential(Linear(4, 2))
        with pytest.raises(ValueError):
            Trainer(model).fit(np.zeros((4, 4)), np.zeros(4, dtype=int), epochs=0)
