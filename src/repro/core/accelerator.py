"""System-level AFPR-CIM accelerator model.

The accelerator groups several mapped layers, tracks how many macro
conversions an inference needs, and turns those counts into latency, energy
and throughput figures using the macro power model.  It is the piece that
connects the circuit-level models to the network-level experiments: the
Fig. 6(c) study runs networks through it (or through its fast noise-model
shortcut) and Table I's throughput / energy-efficiency numbers come from its
performance report for a fully utilised macro.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import MacroConfig
from repro.core.mapping import MappedLayer


@dataclasses.dataclass
class PerformanceReport:
    """Latency / energy / throughput summary of a workload on the accelerator.

    Attributes
    ----------
    conversions:
        Total number of macro conversions performed.
    macro_count:
        Number of physical macros assumed available (conversions on different
        macros overlap in time).
    latency_seconds:
        End-to-end analog latency with that much parallel hardware.
    energy_joules:
        Total energy consumed by the conversions.
    operations:
        Total MAC operations (2 ops per multiply-accumulate).
    throughput_gops:
        Achieved throughput in giga-operations per second.
    energy_efficiency_tops_per_watt:
        Achieved energy efficiency in TOPS/W.
    """

    conversions: int
    macro_count: int
    latency_seconds: float
    energy_joules: float
    operations: int
    throughput_gops: float
    energy_efficiency_tops_per_watt: float


class AFPRAccelerator:
    """A pool of AFPR-CIM macros executing a sequence of mapped layers.

    Parameters
    ----------
    macro_config:
        Configuration shared by every macro in the pool.
    num_macros:
        Number of physical macros available; layers whose tiles exceed this
        count are time-multiplexed.
    macro_power_watts:
        Average power of one active macro.  If omitted the analytical power
        model of :mod:`repro.power` is used.
    """

    def __init__(self, macro_config: MacroConfig = MacroConfig(), num_macros: int = 8,
                 macro_power_watts: Optional[float] = None) -> None:
        if num_macros < 1:
            raise ValueError("num_macros must be >= 1")
        self.macro_config = macro_config
        self.num_macros = num_macros
        self._layers: List[MappedLayer] = []
        self._layer_names: List[str] = []
        self._inflight_conversions = 0
        self._completed_conversions = 0
        self._busy_seconds = 0.0
        self._inferences = 0
        if macro_power_watts is None:
            # Imported lazily so the core package does not hard-depend on the
            # power package at import time.
            from repro.power.macro_power import MacroPowerModel

            macro_power_watts = MacroPowerModel(macro_config).total_power()
        self.macro_power_watts = float(macro_power_watts)

    # ------------------------------------------------------------------
    # Layer management
    # ------------------------------------------------------------------
    @property
    def layers(self) -> List[MappedLayer]:
        """The mapped layers registered so far (in execution order)."""
        return list(self._layers)

    def add_layer(self, weights: np.ndarray, name: Optional[str] = None,
                  ideal_programming: bool = False) -> MappedLayer:
        """Map a weight matrix onto macros and append it to the pipeline."""
        layer = MappedLayer(
            weights, macro_config=self.macro_config, ideal_programming=ideal_programming
        )
        self._layers.append(layer)
        self._layer_names.append(name or f"layer{len(self._layers)}")
        return layer

    def calibrate(self, activations: Sequence[np.ndarray]) -> None:
        """Calibrate every layer with its own representative input batch."""
        if len(activations) != len(self._layers):
            raise ValueError(
                f"need one calibration batch per layer "
                f"({len(self._layers)}), got {len(activations)}"
            )
        for layer, acts in zip(self._layers, activations):
            layer.calibrate(acts)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run the registered layers in sequence (matrix products only).

        Nonlinearities between layers belong to the network model, not the
        accelerator; use :mod:`repro.nn.cim_backend` for complete networks.
        """
        x = np.asarray(inputs, dtype=np.float64)
        for layer in self._layers:
            x = layer.forward(x)
        return x

    # ------------------------------------------------------------------
    # Per-worker occupancy accounting
    # ------------------------------------------------------------------
    # A serving worker wraps one accelerator and books the conversions of
    # each dispatched batch against it, so schedulers can compare load
    # across workers and the metrics layer can report utilisation without
    # the accelerator having to own the mapped layers itself.
    def begin_inference(self, conversions: int) -> None:
        """Book ``conversions`` units of work as in flight on this pool."""
        if conversions < 0:
            raise ValueError("conversions must be >= 0")
        self._inflight_conversions += conversions

    def complete_inference(self, conversions: int,
                           booked: Optional[int] = None) -> None:
        """Retire booked work: move it from in-flight to completed.

        ``conversions`` is what the work actually cost (the worker's
        measured count); ``booked`` is what :meth:`begin_inference` reserved
        for it (defaults to ``conversions``).  The in-flight gauge always
        releases the booked amount — otherwise an estimate that ran high
        would leave phantom load on the gauge forever — and is clamped at
        zero so an estimate that ran low cannot drive it negative.
        """
        if conversions < 0:
            raise ValueError("conversions must be >= 0")
        released = conversions if booked is None else booked
        if released < 0:
            raise ValueError("booked must be >= 0")
        self._inflight_conversions = max(0, self._inflight_conversions - released)
        self._completed_conversions += conversions
        self._busy_seconds += self.busy_seconds_for(conversions)
        self._inferences += 1

    def cancel_inference(self, booked: int) -> None:
        """Release booked work that failed before completing (no work done)."""
        if booked < 0:
            raise ValueError("booked must be >= 0")
        self._inflight_conversions = max(0, self._inflight_conversions - booked)

    def busy_seconds_for(self, conversions: int) -> float:
        """Macro-pool busy time for that many conversions (time-multiplexed)."""
        if conversions <= 0:
            return 0.0
        serial_rounds = int(np.ceil(conversions / self.num_macros))
        return serial_rounds * self.macro_config.conversion_time

    @property
    def inflight_conversions(self) -> int:
        """Conversions currently booked but not yet retired."""
        return self._inflight_conversions

    @property
    def completed_conversions(self) -> int:
        """Conversions retired through :meth:`complete_inference`."""
        return self._completed_conversions

    @property
    def busy_seconds(self) -> float:
        """Cumulative modelled busy time of the macro pool."""
        return self._busy_seconds

    @property
    def inferences(self) -> int:
        """Number of inference batches retired on this pool."""
        return self._inferences

    def estimated_queue_delay(self) -> float:
        """Modelled wait before new work starts, given the in-flight load."""
        return self.busy_seconds_for(self._inflight_conversions)

    def occupancy(self) -> Dict[str, float]:
        """Snapshot of the occupancy gauges (for metrics reporting)."""
        return {
            "inflight_conversions": float(self._inflight_conversions),
            "completed_conversions": float(self._completed_conversions),
            "busy_seconds": self._busy_seconds,
            "inferences": float(self._inferences),
            "estimated_queue_delay_s": self.estimated_queue_delay(),
        }

    # ------------------------------------------------------------------
    # Performance accounting
    # ------------------------------------------------------------------
    def total_conversions(self) -> int:
        """Macro conversions executed so far across all layers."""
        return sum(layer.total_conversions() for layer in self._layers)

    def total_operations(self) -> int:
        """MAC operations executed so far across all layers."""
        total = 0
        for layer in self._layers:
            for macro in layer.macros:
                total += macro.stats.mac_operations
        return total

    def performance_report(self) -> PerformanceReport:
        """Summarise the work done so far into latency / energy / efficiency."""
        conversions = self.total_conversions()
        operations = self.total_operations()
        conversion_time = self.macro_config.conversion_time
        # Conversions are spread over the available macros; the pool is the
        # unit of time-multiplexing.
        serial_rounds = int(np.ceil(conversions / self.num_macros)) if conversions else 0
        latency = serial_rounds * conversion_time
        energy = conversions * self.macro_power_watts * conversion_time
        throughput = operations / latency / 1e9 if latency > 0 else 0.0
        efficiency = operations / energy / 1e12 if energy > 0 else 0.0
        return PerformanceReport(
            conversions=conversions,
            macro_count=self.num_macros,
            latency_seconds=latency,
            energy_joules=energy,
            operations=operations,
            throughput_gops=throughput,
            energy_efficiency_tops_per_watt=efficiency,
        )

    def peak_performance(self) -> Dict[str, float]:
        """Peak (fully utilised) figures of one macro, as reported in Table I.

        Returns a dictionary with the macro latency in microseconds, the peak
        throughput in GOPS and the peak energy efficiency in TOPS/W.
        """
        conversion_time = self.macro_config.conversion_time
        ops = self.macro_config.ops_per_conversion
        throughput_gops = ops / conversion_time / 1e9
        energy_per_conversion = self.macro_power_watts * conversion_time
        efficiency = ops / energy_per_conversion / 1e12
        return {
            "latency_us": conversion_time * 1e6,
            "throughput_gops": throughput_gops,
            "energy_efficiency_tops_per_watt": efficiency,
        }

    def layer_summary(self) -> List[Dict[str, float]]:
        """Per-layer mapping summary (macros used, conversions, operations)."""
        summary = []
        for name, layer in zip(self._layer_names, self._layers):
            ops = sum(macro.stats.mac_operations for macro in layer.macros)
            summary.append(
                {
                    "name": name,
                    "in_features": float(layer.in_features),
                    "out_features": float(layer.out_features),
                    "macros": float(layer.num_macros),
                    "conversions": float(layer.total_conversions()),
                    "operations": float(ops),
                }
            )
        return summary
