"""Benchmark: per-backend inference throughput of the execution engine.

Four acceptance bars, measured on a small trained CNN:

* every registered backend clears a sanity accuracy bound on the same
  workload (throughput table),
* the batch-vectorised ``analog`` backend is >= 3x faster than the seed's
  per-sample full-array readout path (the PR-1 gate),
* the compiled execution plan is >= 2x faster than the generic
  ``BatchRunner`` path on the analog backend while producing
  **bit-identical** logits on every registered backend (the PR-3 plan
  gate),
* code-domain planned execution (FP8 codes threaded between the layer
  boundary and the fused code→voltage tables, allocation-free arena
  kernels) is >= 1.5x faster than the PR-3 float-domain plan — again with
  bit-identical logits and conversion counts on every registered backend
  (the PR-4 gate).  The measured numbers land in ``BENCH_exec.json`` so
  future changes can track the performance trajectory, and the CI
  regression gate diffs the speedup ratios against the committed baseline.

Timing uses the shared best-of-N helpers in :mod:`_timing`; steady-state
comparisons interleave the contenders round by round (each on its own model
replica — compiled plans patch layer forwards, so two live plans must not
share a model) so load drift on a shared runner cannot bias one side.
``BENCH_SMOKE=1`` selects the reduced-size CI configuration.

Run with::

    pytest benchmarks/bench_exec_backends.py --benchmark-only -s
"""

import copy
import dataclasses
import time

import numpy as np
import pytest

from _timing import best_metric, smoke_mode, write_bench_json
from repro.core import MacroConfig
from repro.exec import (
    AnalogBackend,
    BatchRunner,
    ExecutionContext,
    available_backends,
    compare_backends,
    run_model,
)
from repro.nn import DatasetConfig, SGD, SyntheticImageDataset, Trainer, build_resnet_lite
from repro.nn.quantize import CIMNonidealities
from repro.rram.device import RRAMStatistics

SAMPLES = 32 if smoke_mode() else 64
ROUNDS = 2 if smoke_mode() else 3

#: Results stashed across the module's tests; the last test writes the
#: consolidated ``BENCH_exec.json`` trajectory from whatever ran.
_RESULTS = {}


@pytest.fixture(scope="module")
def workload():
    """A small trained CNN plus an evaluation batch."""
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=8, image_size=16,
                                                  noise_sigma=0.3, seed=7))
    x_train, y_train, x_test, y_test = dataset.train_test_split(320, SAMPLES)
    model = build_resnet_lite(num_classes=8, stage_widths=(8, 16), blocks_per_stage=1,
                              seed=7)
    Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32).fit(
        x_train, y_train, epochs=1 if smoke_mode() else 2
    )
    quiet = RRAMStatistics(programming_sigma=0.01, read_noise_sigma=0.005,
                           stuck_at_lrs_probability=0.0, stuck_at_hrs_probability=0.0)
    macro_config = MacroConfig(device_statistics=quiet)
    return model, x_train, x_test, y_test, macro_config


@pytest.mark.benchmark(group="exec-backends")
def test_backend_throughput_table(benchmark, workload):
    """Record samples/s for every registered backend on the same workload."""
    model, x_train, x_test, y_test, macro_config = workload

    def run_all():
        return compare_backends(
            model, x_test, y_test,
            backends=available_backends(),
            calibration=x_train[:16],
            macro_config=macro_config,
            nonidealities=CIMNonidealities(mac_noise_sigma=0.02),
            max_mapped_layers=2,
            seed=0,
        )

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"\nPer-backend throughput ({SAMPLES}-sample CNN inference):")
    ideal = reports["ideal"].accuracy
    for name, report in sorted(reports.items()):
        print(f"  {name:12s} {report.samples_per_second:10.1f} samples/s  "
              f"accuracy {report.accuracy:.3f}")
        assert report.accuracy >= ideal - 0.2, name


@pytest.mark.benchmark(group="exec-backends")
def test_batched_analog_vs_seed_per_sample_path(benchmark, workload):
    """The batched analog backend is >= 3x faster than the seed per-sample
    path (per-sample evaluation with the original full-array readout), with
    equivalent accuracy."""
    model, x_train, x_test, y_test, macro_config = workload
    kwargs = dict(calibration=x_train[:16], macro_config=macro_config,
                  max_mapped_layers=2, seed=0)

    # Batched: the default vectorised analog backend, whole batch at once.
    # Each side's time is the best-of-N of the report's internal
    # forward-only clock, which excludes prepare and harness overhead.
    batched_backend = AnalogBackend(vectorized=True)
    run_model(model, x_test[:1], backend=batched_backend, **kwargs)  # prepare once

    def batched():
        return run_model(model, x_test, y_test, backend=batched_backend,
                         batch_size=SAMPLES, **kwargs)

    def timed_batched():
        time, report = best_metric(batched, lambda r: r.wall_time_s, rounds=ROUNDS)
        return time, report

    (batched_time, batched_report) = benchmark.pedantic(
        timed_batched, rounds=1, iterations=1)

    # Seed path: one sample at a time through the original full-array,
    # two-pass readout (pads every evaluation to 576 rows, converts all 256
    # ADC channels) — how the repository executed analog inference before
    # the vectorised engine.
    reference_backend = AnalogBackend(vectorized=False)
    run_model(model, x_test[:1], backend=reference_backend, **kwargs)  # prepare once
    per_sample_time, reference_report = best_metric(
        lambda: run_model(model, x_test, y_test, backend=reference_backend,
                          batch_size=1, **kwargs),
        lambda r: r.wall_time_s, rounds=2)

    speedup = per_sample_time / batched_time
    print(f"\nBatched analog: {batched_time:.3f}s "
          f"({batched_report.samples_per_second:.1f} samples/s)")
    print(f"Seed per-sample path: {per_sample_time:.3f}s "
          f"({SAMPLES / per_sample_time:.1f} samples/s)")
    print(f"Speedup: {speedup:.1f}x")
    print(f"Accuracy batched {batched_report.accuracy:.3f} vs "
          f"reference {reference_report.accuracy:.3f}")

    assert speedup >= 3.0, f"batched analog only {speedup:.2f}x faster"
    assert abs(batched_report.accuracy - reference_report.accuracy) <= 0.2


@pytest.mark.benchmark(group="exec-backends")
def test_compiled_plan_beats_batchrunner_2x_bit_identical(benchmark, workload):
    """The compiled execution plan is >= 2x faster than the generic
    ``BatchRunner`` path on the analog backend, with bit-identical logits on
    every registered backend, and writes the ``BENCH_exec.json`` trajectory.

    Bit identity is checked with a *fresh* backend per path so both consume
    identical random streams (programming noise at prepare, read noise per
    forward) from the same seeds — the plan's LUT kernels then reproduce the
    generic arithmetic exactly.
    """
    model, x_train, x_test, y_test, macro_config = workload
    kwargs = dict(calibration=x_train[:16], macro_config=macro_config,
                  max_mapped_layers=2, seed=0)

    def check_identity():
        outcomes = {}
        for backend in available_backends():
            planned = run_model(model, x_test, backend=backend,
                                batch_size=SAMPLES, **kwargs)
            generic = run_model(model, x_test, backend=backend,
                                batch_size=SAMPLES, compile_plan=False, **kwargs)
            outcomes[backend] = bool(
                np.array_equal(planned.logits, generic.logits)
                and planned.conversions == generic.conversions)
        return outcomes

    outcomes = benchmark.pedantic(check_identity, rounds=1, iterations=1)
    print("\nPlanned-vs-generic bit identity:")
    for backend, identical in sorted(outcomes.items()):
        print(f"  {backend:12s} {'bit-identical' if identical else 'MISMATCH'}")
    assert all(outcomes.values()), outcomes

    # Steady-state speed: both backends prepared once, forward-only clocks.
    planned_backend = AnalogBackend()
    generic_backend = AnalogBackend()
    run_model(model, x_test[:1], backend=planned_backend, **kwargs)
    run_model(model, x_test[:1], backend=generic_backend, compile_plan=False,
              **kwargs)
    planned_time, planned_report = best_metric(
        lambda: run_model(model, x_test, y_test, backend=planned_backend,
                          batch_size=SAMPLES, **kwargs),
        lambda r: r.wall_time_s, rounds=ROUNDS)
    generic_time, _ = best_metric(
        lambda: run_model(model, x_test, y_test, backend=generic_backend,
                          batch_size=SAMPLES, compile_plan=False, **kwargs),
        lambda r: r.wall_time_s, rounds=ROUNDS)

    speedup = generic_time / planned_time
    print(f"Compiled plan: {planned_time * 1e3:.1f} ms, "
          f"generic BatchRunner: {generic_time * 1e3:.1f} ms, "
          f"speedup {speedup:.2f}x")
    if planned_report.stage_profile:
        profile = planned_report.stage_profile
        print("Plan stage breakdown: "
              f"DAC {profile['dac_s'] * 1e3:.1f} ms, "
              f"crossbar {profile['crossbar_s'] * 1e3:.1f} ms, "
              f"ADC {profile['adc_s'] * 1e3:.1f} ms, "
              f"digital {profile['digital_s'] * 1e3:.1f} ms")

    _RESULTS.update({
        "planned_s": planned_time,
        "generic_s": generic_time,
        "plan_speedup": speedup,
        "planned_samples_per_second": SAMPLES / planned_time,
        "bit_identical": outcomes,
        "stage_profile": planned_report.stage_profile,
    })

    assert speedup >= 2.0, f"compiled plan only {speedup:.2f}x faster"


@pytest.mark.benchmark(group="exec-backends")
def test_code_domain_beats_float_plan_1p5x_bit_identical(benchmark, workload):
    """Code-domain planned execution is >= 1.5x faster than the PR-3
    float-domain plan, bit-identical (logits *and* conversion counts) on
    every registered backend, and writes the ``BENCH_exec.json`` trajectory.

    The speed comparison maps every matmul layer (the regime the code
    domain targets — the more analog layers, the more per-batch ranking
    the float plan re-derives) and times warmed steady-state forwards,
    interleaving the two contenders so runner load drift hits both sides
    equally.
    """
    model, x_train, x_test, y_test, macro_config = workload
    kwargs = dict(calibration=x_train[:16], macro_config=macro_config,
                  max_mapped_layers=None, seed=0)

    def check_identity():
        outcomes = {}
        for backend in available_backends():
            coded = run_model(model, x_test, backend=backend,
                              batch_size=SAMPLES, **kwargs)
            float_plan = run_model(model, x_test, backend=backend,
                                   batch_size=SAMPLES, code_domain=False,
                                   **kwargs)
            outcomes[backend] = bool(
                np.array_equal(coded.logits, float_plan.logits)
                and coded.conversions == float_plan.conversions)
        return outcomes

    outcomes = benchmark.pedantic(check_identity, rounds=1, iterations=1)
    print("\nCode-domain vs float-plan bit identity:")
    for backend, identical in sorted(outcomes.items()):
        print(f"  {backend:12s} {'bit-identical' if identical else 'MISMATCH'}")
    assert all(outcomes.values()), outcomes

    context = ExecutionContext(batch_size=SAMPLES, **kwargs)
    coded = BatchRunner(copy.deepcopy(model), "analog", context=context)
    float_plan = BatchRunner(
        copy.deepcopy(model), "analog",
        context=dataclasses.replace(context, code_domain=False))
    try:
        for runner in (coded, float_plan):
            runner.forward(x_test)  # warm plan state and arena slabs
        best = {"code": float("inf"), "float": float("inf")}
        for _ in range(2 * ROUNDS + 1):
            start = time.perf_counter()
            coded.forward(x_test)
            best["code"] = min(best["code"], time.perf_counter() - start)
            start = time.perf_counter()
            float_plan.forward(x_test)
            best["float"] = min(best["float"], time.perf_counter() - start)
        profile = coded.stage_profile()
    finally:
        coded.close()
        float_plan.close()

    speedup = best["float"] / best["code"]
    print(f"Code-domain plan: {best['code'] * 1e3:.1f} ms, "
          f"float-domain plan: {best['float'] * 1e3:.1f} ms, "
          f"speedup {speedup:.2f}x")

    path = write_bench_json("exec", {
        "samples": SAMPLES,
        "code_domain_s": best["code"],
        "float_plan_s": best["float"],
        "code_domain_speedup": speedup,
        "code_domain_samples_per_second": SAMPLES / best["code"],
        "code_domain_bit_identical": outcomes,
        "code_domain_stage_profile": profile,
        **_RESULTS,
    })
    print(f"Trajectory written to {path}")

    assert speedup >= 1.5, f"code-domain plan only {speedup:.2f}x faster"
