"""The execution-backend protocol: one interface for every way to run a model.

Network-on-CIM execution historically lived in three ad-hoc places — the
lumped-noise PTQ flow (:mod:`repro.nn.quantize`), the hardware-in-the-loop
macro mapping (:mod:`repro.nn.cim_backend`) and the plain floating-point
reference.  An :class:`ExecutionBackend` wraps each of those behind the same
``prepare`` / ``forward`` / ``teardown`` lifecycle, so experiment runners and
benchmarks can swap the execution substrate with a string
(``run_model(model, x, backend="analog")``).

Backends are stateful on purpose: ``prepare`` may build expensive state (for
the analog backend, programming and calibrating every macro tile) and a
backend instance caches that state across runs, so repeated evaluations of
the same model skip re-calibration.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import ClassVar, Optional, Union

import numpy as np

from repro.core.config import MacroConfig
from repro.formats.fp8 import E2M5, FloatFormat
from repro.formats.intq import IntFormat
from repro.nn.model import Model
from repro.nn.quantize import CIMNonidealities

FormatLike = Union[FloatFormat, IntFormat]


@dataclasses.dataclass(frozen=True)
class ExecutionContext:
    """Everything a backend may need to set itself up for a model.

    Attributes
    ----------
    calibration:
        A representative input batch used to calibrate activation ranges
        (quantiser observers, macro activation scales and ADC full-scale
        currents).  Backends that need calibration fall back to synthetic
        statistics when it is omitted.
    macro_config:
        Macro configuration for hardware-in-the-loop execution and for
        extracting lumped non-idealities.
    weight_format / activation_format:
        Number formats used by the quantising backends.
    nonidealities:
        Lumped CIM noise for the ``fast_noise`` backend; extracted from the
        macro model when omitted.
    max_mapped_layers:
        Cap on how many matmul layers the ``analog`` backend maps onto
        macros (``None`` maps everything).
    batch_size:
        Minibatch size of the evaluation loop.
    seed:
        Seed for the stochastic parts of a backend.
    compile_plan:
        Compile the prepared backend state into a :class:`~repro.exec.plan.
        ModelPlan` with LUT-fused conversion kernels and pre-packed tiles
        (bit-identical, faster).  ``False`` keeps the generic kernels — the
        pre-plan execution path, used as the benchmark baseline.
    code_domain:
        Run compiled analog layers in the code domain: the layer input is
        encoded once into FP8 activation codes at the layer boundary and the
        codes thread through im2col, the sign passes and every tile, whose
        compile-time-fused code→voltage tables replace the per-batch bucket
        ranking.  Bit-identical to the float plan path; layers whose tiles
        cannot share a code table fall back per layer.  ``False`` keeps the
        float-domain compiled kernels (the PR-3 plan behaviour, used as the
        code-domain benchmark baseline).  Ignored when ``compile_plan`` is
        off.
    """

    calibration: Optional[np.ndarray] = None
    macro_config: MacroConfig = dataclasses.field(default_factory=MacroConfig)
    weight_format: FormatLike = E2M5
    activation_format: FormatLike = E2M5
    nonidealities: Optional[CIMNonidealities] = None
    max_mapped_layers: Optional[int] = None
    batch_size: int = 64
    seed: int = 0
    compile_plan: bool = True
    code_domain: bool = True


@dataclasses.dataclass
class ExecutionReport:
    """Outcome of running a model through one backend.

    ``wall_time_s`` covers only the forward passes, not ``prepare`` — the
    preparation cost is reported separately so throughput numbers compare
    steady-state inference.
    """

    backend: str
    logits: np.ndarray
    samples: int
    wall_time_s: float
    prepare_time_s: float
    accuracy: Optional[float] = None
    conversions: int = 0
    #: Per-stage (DAC / crossbar / ADC / digital) wall-clock breakdown from
    #: the execution plan's instrumentation, when a plan ran the batches.
    stage_profile: Optional[dict] = None
    #: How the batches executed: ``"code-domain"`` (compiled plan threading
    #: FP8 codes), ``"float-plan"`` (compiled float kernels) or
    #: ``"generic"`` (no plan compilation).
    plan_mode: str = "generic"

    @property
    def samples_per_second(self) -> float:
        """Steady-state inference throughput of the backend."""
        if self.wall_time_s <= 0:
            return float("inf")
        return self.samples / self.wall_time_s


class ExecutionBackend(abc.ABC):
    """Common lifecycle of every execution substrate.

    ``prepare`` installs whatever the backend needs on the model (adapters,
    macro mappings), ``forward`` runs one minibatch, and ``teardown``
    restores digital execution.  ``teardown`` must leave the model exactly
    as ``prepare`` found it, but may keep internal state so the next
    ``prepare`` of the same model is cheap.
    """

    #: Registry name of the backend (set by subclasses).
    name: ClassVar[str] = "abstract"

    def prepare(self, model: Model, context: ExecutionContext) -> None:
        """Install the backend on ``model`` (default: nothing to do)."""

    @abc.abstractmethod
    def forward(self, model: Model, images: np.ndarray) -> np.ndarray:
        """Run one minibatch through the prepared model."""

    def teardown(self, model: Model) -> None:
        """Restore plain digital execution (default: nothing to do)."""

    def conversions(self) -> int:
        """Analog macro conversions spent so far (0 for digital backends)."""
        return 0
