"""Shared-memory ring transport between the service and its process workers.

``workers="process"`` historically pickled every batch into the worker's
executor pipe and pickled the logits back — two serialisations, chunked pipe
writes and reads, and three copies per batch of pure software overhead.
This module replaces that with ``multiprocessing.shared_memory`` rings:

* the parent owns two segments per worker — images in, logits out — each
  cut into a fixed number of equally-sized **slots**;
* a batch is written straight into a free request slot (one copy), the
  worker runs its plan on a zero-copy view of that slot and writes the
  logits into the matching response slot (one copy), and only the tiny
  ``(slot, shape)`` coordinates cross the executor pipe;
* the free-slot queue provides **backpressure**: a batch waits for a slot
  instead of growing an unbounded buffer;
* the parent creates and unlinks the segments, so ``service.close()``
  always removes them from ``/dev/shm`` — even when the worker process
  crashed mid-batch (attachment in the worker is excluded from its
  resource tracker precisely so a dying worker cannot unlink the parent's
  segments first).

Slot sizes are learned from the first served batch (which rides the pickle
path and doubles as the worker warm-up): ``max_batch`` rows of that batch's
row layout, so steady-state traffic is zero-copy while oversized one-off
requests transparently fall back to pickling.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    Python < 3.13 registers every attachment with the attaching process's
    resource tracker, which then unlinks the segment when that process
    exits — yanking it out from under the parent that owns it.  (Whether
    the worker shares the parent's tracker daemon or spawned its own
    depends on fork timing, so unregistering after the fact either
    double-removes the parent's entry or races the worker-tracker's exit
    cleanup.)  Registration is therefore suppressed for the attachment
    itself: the worker only ever *closes* its mapping; creating, tracking
    and unlinking stay with the parent that owns the segment.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class SlotRing:
    """One shared-memory segment cut into fixed-size array slots."""

    def __init__(self, slots: int, slot_nbytes: int,
                 segment: Optional[shared_memory.SharedMemory] = None) -> None:
        if slots < 1 or slot_nbytes < 1:
            raise ValueError("need at least one slot of at least one byte")
        self.slots = slots
        self.slot_nbytes = int(slot_nbytes)
        #: Transport counters for this process's side of the ring:
        #: cumulative slot writes and bytes copied through :meth:`write`.
        #: The metrics exposition reports them as shm transport gauges.
        self.writes = 0
        self.bytes_written = 0
        self.segment = (segment if segment is not None
                        else shared_memory.SharedMemory(
                            create=True, size=slots * self.slot_nbytes))

    @classmethod
    def attach(cls, name: str, slots: int, slot_nbytes: int) -> "SlotRing":
        """Worker-side view of a parent-owned ring (never unlinks it).

        The segment must be large enough for the advertised geometry: a
        respawned worker attaching stale coordinates (a ring the parent
        has already replaced) would otherwise read/write out of bounds of
        the smaller segment, so a size mismatch fails loudly here and the
        serving layer treats it like any other broken-transport fault.
        """
        segment = attach_segment(name)
        needed = slots * int(slot_nbytes)
        if segment.size < needed:
            segment.close()
            raise ValueError(
                f"segment {name!r} holds {segment.size} bytes but the "
                f"advertised ring geometry needs {needed} "
                f"({slots} slots x {slot_nbytes} bytes); stale attach "
                "coordinates?"
            )
        return cls(slots, slot_nbytes, segment=segment)

    @property
    def name(self) -> str:
        """The segment name (its ``/dev/shm`` entry)."""
        return self.segment.name

    def fits(self, nbytes: int) -> bool:
        """Whether an array of ``nbytes`` fits one slot."""
        return nbytes <= self.slot_nbytes

    def view(self, slot: int, shape: Tuple[int, ...],
             dtype=np.float64) -> np.ndarray:
        """A zero-copy array view of one slot."""
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} out of range 0..{self.slots - 1}")
        offset = slot * self.slot_nbytes
        view = np.ndarray(shape, dtype=dtype,
                          buffer=self.segment.buf[offset:offset + self.slot_nbytes])
        return view

    def write(self, slot: int, array: np.ndarray) -> None:
        """Copy ``array`` into ``slot`` (the transport's single copy)."""
        if not self.fits(array.nbytes):
            raise ValueError(
                f"array of {array.nbytes} bytes exceeds the "
                f"{self.slot_nbytes}-byte slot"
            )
        self.view(slot, array.shape, array.dtype)[...] = array
        self.writes += 1
        self.bytes_written += int(array.nbytes)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself stays)."""
        try:
            self.segment.close()
        except BufferError:  # a live view still references the buffer
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (owner side, idempotent)."""
        try:
            self.segment.unlink()
        except FileNotFoundError:
            pass


class ShmChannel:
    """The parent-owned request/response ring pair of one process worker."""

    def __init__(self, slots: int, request_slot_nbytes: int,
                 response_slot_nbytes: int) -> None:
        self.requests = SlotRing(slots, request_slot_nbytes)
        try:
            self.responses = SlotRing(slots, response_slot_nbytes)
        except Exception:
            self.requests.close()
            self.requests.unlink()
            raise
        self.slots = slots

    @property
    def segment_names(self) -> List[str]:
        """Names of both segments (what the unlink tests check)."""
        return [self.requests.name, self.responses.name]

    def describe(self) -> Tuple[str, str, int, int, int]:
        """The attach coordinates shipped to the worker process."""
        return (self.requests.name, self.responses.name, self.slots,
                self.requests.slot_nbytes, self.responses.slot_nbytes)

    def transport_counters(self) -> Dict[str, int]:
        """Cumulative parent-side slot writes and bytes through both rings.

        Only the parent's copies are counted (batch in via ``requests``;
        the worker writes ``responses`` in its own process), which is
        exactly the serving process's shm transport cost.
        """
        return {
            "request_writes": self.requests.writes,
            "request_bytes": self.requests.bytes_written,
            "response_writes": self.responses.writes,
            "response_bytes": self.responses.bytes_written,
        }

    def close(self, unlink: bool = True) -> None:
        """Close the mappings and (by default) unlink both segments."""
        for ring in (self.requests, self.responses):
            ring.close()
            if unlink:
                ring.unlink()


def segment_exists(name: str) -> bool:
    """Whether a shared-memory segment of this name still exists."""
    try:
        segment = attach_segment(name)
    except FileNotFoundError:
        return False
    segment.close()
    return True
