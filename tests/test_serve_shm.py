"""Tests for the shared-memory process transport (:mod:`repro.serve.shm`)
and the sliced ``submit_many`` fast path.

The transport contract: process workers serve bit-identical logits over
the shared-memory rings and the pickle pipe, oversized batches fall back
to pickling transparently, and the parent-owned segments are unlinked on
``service.stop()`` — including when the worker process crashed mid-serving
(no ``/dev/shm`` leaks).
"""

import asyncio
import os
import signal

import numpy as np
import pytest

from repro.exec import run_model
from repro.nn import DatasetConfig, SGD, Sequential, SyntheticImageDataset, Trainer
from repro.nn.layers import Flatten, Linear, ReLU
from repro.serve import InferenceService, ServeConfig, serve_requests
from repro.serve.shm import ShmChannel, SlotRing, segment_exists


def run_async(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def trained_setup():
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=4, image_size=10,
                                                  noise_sigma=0.3, seed=3))
    x_train, y_train, x_test, _ = dataset.train_test_split(96, 48)
    model = Sequential(
        Flatten(),
        Linear(300, 32, rng=np.random.default_rng(0)),
        ReLU(),
        Linear(32, 4, rng=np.random.default_rng(1)),
    )
    Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32).fit(
        x_train, y_train, epochs=1
    )
    return model, x_test


class TestSlotRing:
    def test_roundtrip_and_bounds(self):
        ring = SlotRing(slots=3, slot_nbytes=8 * 16)
        try:
            data = np.arange(16, dtype=np.float64).reshape(4, 4)
            ring.write(2, data)
            assert np.array_equal(ring.view(2, (4, 4)), data)
            with pytest.raises(ValueError):
                ring.write(0, np.zeros(17))
            with pytest.raises(IndexError):
                ring.view(3, (4, 4))
        finally:
            ring.close()
            ring.unlink()
        assert not segment_exists(ring.name)

    def test_attach_sees_owner_writes_and_never_unlinks(self):
        ring = SlotRing(slots=2, slot_nbytes=64)
        try:
            attached = SlotRing.attach(ring.name, 2, 64)
            ring.write(1, np.full(8, 7.0))
            assert np.array_equal(attached.view(1, (8,)), np.full(8, 7.0))
            attached.close()
            assert segment_exists(ring.name)  # closing a mapping is not unlink
        finally:
            ring.close()
            ring.unlink()

    def test_channel_unlink_is_idempotent(self):
        channel = ShmChannel(2, 128, 64)
        names = channel.segment_names
        channel.close(unlink=True)
        channel.close(unlink=True)
        assert not any(segment_exists(name) for name in names)


class TestShmServing:
    def test_shm_and_pickle_serve_bit_identical_logits(self, trained_setup):
        model, x_test = trained_setup
        images = x_test[:24]
        direct = run_model(model, images, backend="ideal", batch_size=24)
        for transport in ("shm", "pickle"):
            served, snapshot = serve_requests(
                model, images,
                ServeConfig(max_batch=8, workers="process", transport=transport))
            assert np.array_equal(served, direct.logits), transport
            assert all(worker.mode == "process" for worker in snapshot.workers)

    def test_transport_seconds_metered_for_process_workers(self, trained_setup):
        model, x_test = trained_setup
        _, snapshot = serve_requests(
            model, x_test[:16],
            ServeConfig(max_batch=8, workers="process", transport="shm"))
        assert sum(worker.transport_s for worker in snapshot.workers) > 0
        assert "transport" in snapshot.render()

    def test_unknown_transport_rejected(self, trained_setup):
        model, _ = trained_setup
        with pytest.raises(ValueError, match="transport"):
            InferenceService(model, ServeConfig(transport="carrier-pigeon"))

    def test_segments_unlinked_after_stop(self, trained_setup):
        model, x_test = trained_setup

        async def scenario():
            service = InferenceService(model, ServeConfig(
                max_batch=8, workers="process", transport="shm"))
            await service.start()
            for _ in range(3):
                await service.submit(x_test[:8])
            names = service.shm_segment_names()
            assert names and all(segment_exists(name) for name in names)
            await service.stop()
            return names

        names = run_async(scenario())
        assert not any(segment_exists(name) for name in names)

    def test_segments_unlinked_after_worker_crash(self, trained_setup):
        # Pinned to the no-fault-tolerance baseline (fail_fast, no respawn)
        # so the kill surfaces to the client and the only cleanup path is
        # the service's own teardown of the dead worker's segments.
        model, x_test = trained_setup

        async def scenario():
            service = InferenceService(model, ServeConfig(
                max_batch=8, workers="process", transport="shm",
                retry_policy="fail_fast", respawn=False))
            await service.start()
            await service.submit(x_test[:8])  # warm-up builds the rings
            await service.submit(x_test[:8])
            names = service.shm_segment_names()
            assert names
            worker = service._workers[0]
            pid = next(iter(worker.executor._processes))
            os.kill(pid, signal.SIGKILL)
            with pytest.raises(Exception):
                await service.submit(x_test[:8])
            try:
                await service.stop()
            except Exception:
                pass  # the crash may surface here; cleanup must still run
            return names

        names = run_async(scenario())
        assert not any(segment_exists(name) for name in names)

    def test_worker_pool_survives_one_dead_process_worker(self, trained_setup):
        # Under retry_policy="fail_fast" (the pre-fault-tolerance baseline)
        # a process worker SIGKILLed mid-run fails exactly the batches
        # routed to it; the rest of the pool keeps serving, and shutdown
        # still cleans up every worker and segment.  The redispatch path
        # is covered by tests/test_fault_tolerance.py.
        model, x_test = trained_setup
        direct = run_model(model, x_test[:8], backend="ideal", batch_size=8)

        async def scenario():
            service = InferenceService(model, ServeConfig(
                max_batch=8, num_workers=2, workers="process",
                policy="round_robin", retry_policy="fail_fast",
                respawn=False))
            await service.start()
            # Warm both workers (round robin alternates batches).
            assert np.array_equal(await service.submit(x_test[:8]),
                                  direct.logits)
            await service.submit(x_test[:8])
            victim = service._workers[0]
            os.kill(next(iter(victim.executor._processes)), signal.SIGKILL)
            outcomes = []
            for _ in range(4):
                try:
                    served = await service.submit(x_test[:8])
                    outcomes.append(np.array_equal(served, direct.logits))
                except Exception:  # noqa: BLE001 — the dead worker's batches
                    outcomes.append(None)
            names = service.shm_segment_names()
            await service.stop()
            return outcomes, names

        outcomes, names = run_async(scenario())
        # The surviving worker kept serving correct logits...
        assert outcomes.count(True) >= 2
        # ...while the dead worker's batches failed instead of hanging.
        assert outcomes.count(None) >= 1
        assert not any(segment_exists(name) for name in names)

    def test_oversized_batch_falls_back_to_pickle(self, trained_setup):
        # A single request larger than max_batch ships as one batch that
        # exceeds the ring's slot size; the worker must still serve it
        # (transparent per-batch pickle fallback), bit-identically.
        model, x_test = trained_setup
        images = x_test[:40]
        direct = run_model(model, images, backend="ideal", batch_size=40)

        async def scenario():
            service = InferenceService(model, ServeConfig(
                max_batch=8, workers="process", transport="shm"))
            await service.start()
            await service.submit(x_test[:8])   # warm-up: slots sized for 8
            served = await service.submit(images)  # 40-row request, one batch
            small = await service.submit(x_test[:8])  # ring still serves
            await service.stop()
            return served, small

        served, small = run_async(scenario())
        assert np.array_equal(served, direct.logits)
        assert np.array_equal(small, direct.logits[:8])

    def test_shm_disabled_on_pickle_transport(self, trained_setup):
        model, x_test = trained_setup

        async def scenario():
            service = InferenceService(model, ServeConfig(
                max_batch=8, workers="process", transport="pickle"))
            await service.start()
            await service.submit(x_test[:8])
            await service.submit(x_test[:8])
            names = service.shm_segment_names()
            await service.stop()
            return names

        assert run_async(scenario()) == []


class TestSubmitManySlices:
    def test_sliced_requests_match_direct_and_count(self, trained_setup):
        model, x_test = trained_setup
        images = x_test[:20]
        logits, snapshot = serve_requests(model, images,
                                          ServeConfig(max_batch=7))
        direct = run_model(model, images, backend="ideal", batch_size=20)
        assert np.array_equal(logits, direct.logits)
        # 20 rows at max_batch=7 -> 3 slice requests (7 + 7 + 6 rows).
        assert snapshot.requests == 3
        assert snapshot.samples == 20

    def test_empty_submission(self, trained_setup):
        model, _ = trained_setup

        async def scenario():
            service = InferenceService(model, ServeConfig(max_batch=4))
            await service.start()
            empty = await service.submit_many(np.zeros((0, 3, 10, 10)))
            await service.stop()
            return empty

        assert run_async(scenario()).shape == (0, 0)
