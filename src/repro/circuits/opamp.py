"""Op-amp macromodel.

The integrator and the PGA of AFPR-CIM are both built around op-amps.  At the
system level the relevant limitations are finite DC gain (gain error on the
virtual ground), finite slew rate and gain-bandwidth (settling error for fast
inputs), input-referred offset, and output swing limits set by the 2.5 V
analog supply.  The macromodel exposes those quantities plus a simple static
power estimate proportional to the bias current needed to drive its load.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class OpAmpModel:
    """Behavioural op-amp parameters.

    Parameters
    ----------
    dc_gain:
        Open-loop DC gain (V/V).
    gain_bandwidth_hz:
        Gain-bandwidth product in Hz.
    slew_rate:
        Output slew rate in V/s.
    offset_voltage:
        Input-referred offset in volts (before any CDS cancellation).
    output_min / output_max:
        Output swing limits in volts.
    bias_current:
        Quiescent bias current in amperes (used by the power model).
    supply_voltage:
        Analog supply in volts (2.5 V in the paper).
    """

    dc_gain: float = 10_000.0
    gain_bandwidth_hz: float = 1.0e9
    slew_rate: float = 5.0e8
    offset_voltage: float = 0.0
    output_min: float = 0.0
    output_max: float = 2.5
    bias_current: float = 20e-6
    supply_voltage: float = 2.5

    def __post_init__(self) -> None:
        if self.dc_gain <= 1:
            raise ValueError("dc_gain must exceed 1")
        if self.output_max <= self.output_min:
            raise ValueError("output_max must exceed output_min")
        if self.gain_bandwidth_hz <= 0 or self.slew_rate <= 0:
            raise ValueError("gain_bandwidth_hz and slew_rate must be positive")

    def clip_output(self, v: np.ndarray) -> np.ndarray:
        """Clamp an output voltage to the swing limits."""
        return np.clip(v, self.output_min, self.output_max)

    def closed_loop_gain_error(self, ideal_gain: float) -> float:
        """Relative gain error of a feedback stage with the given ideal gain.

        For a loop with noise gain ``1/beta = ideal_gain`` the closed-loop
        gain is ``ideal / (1 + ideal/A0)``; the returned value is the relative
        deviation from ideal (a small negative number).
        """
        actual = ideal_gain / (1.0 + ideal_gain / self.dc_gain)
        return actual / ideal_gain - 1.0

    def max_output_slope(self) -> float:
        """Largest output dV/dt the op-amp can deliver (V/s)."""
        return self.slew_rate

    def settling_time(self, ideal_gain: float, accuracy_bits: int) -> float:
        """Small-signal settling time to ``accuracy_bits`` of precision.

        Settling to half an LSB of an N-bit level needs ``(N + 1) * ln 2``
        closed-loop time constants.
        """
        if accuracy_bits < 1:
            raise ValueError("accuracy_bits must be >= 1")
        closed_loop_bw = self.gain_bandwidth_hz / max(ideal_gain, 1.0)
        tau = 1.0 / (2.0 * np.pi * closed_loop_bw)
        return (accuracy_bits + 1) * np.log(2.0) * tau

    def static_power(self) -> float:
        """Quiescent power of the amplifier in watts."""
        return self.bias_current * self.supply_voltage

    def scaled_for_load(self, load_capacitance: float, reference_load: float,
                        exponent: float = 0.5) -> "OpAmpModel":
        """Return a copy re-biased to drive a different capacitive load.

        Driving a larger integration-capacitor bank requires more bias
        current (the paper's argument for why E3M4's exponentially larger
        capacitor ladder costs ADC power).  The bias current scales as
        ``(C_load / C_ref) ** exponent``; slew rate follows the bias current
        over the load.
        """
        if load_capacitance <= 0 or reference_load <= 0:
            raise ValueError("capacitances must be positive")
        ratio = (load_capacitance / reference_load) ** exponent
        new_bias = self.bias_current * ratio
        new_slew = new_bias / load_capacitance
        return dataclasses.replace(self, bias_current=new_bias, slew_rate=new_slew)
