"""Energy-per-request accounting helpers for the serving layer.

The ``analog`` backend meters real macro conversions, so its energy per
request is simply ``conversions x energy_per_conversion``.  The digital
backends (ideal / fake_quant / fast_noise) perform no conversions, yet a
load test still wants to know what the served traffic *would* cost on the
AFPR accelerator.  :func:`estimate_conversions_per_sample` answers that from
the mapping geometry alone: it captures the matmul input shapes of one probe
forward, tiles each weight matrix the way :class:`~repro.core.mapping.MappedLayer`
would, and charges two conversions (one per input sign) per tile per
activation row — the worst-case (mixed-sign) count the macro model books.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import MacroConfig
from repro.core.macro import AFPRMacro
from repro.core.mapping import im2col, tile_weight_matrix
from repro.nn.layers import Conv2d, Linear
from repro.nn.model import Model


def _matmul_shapes(model: Model, probe_image: np.ndarray,
                   max_mapped_layers: Optional[int] = None
                   ) -> List[Tuple[int, int, int]]:
    """``(rows_per_sample, in_features, out_features)`` per mapped matmul.

    Runs one single-sample probe forward with temporarily-instrumented layer
    forwards (the same capture trick :class:`~repro.nn.cim_backend.CIMMappedNetwork`
    uses for calibration) to learn the im2col row count each layer sees.
    """
    probe = np.asarray(probe_image, dtype=np.float64)
    if probe.ndim == 3:
        probe = probe[None, ...]
    if probe.shape[0] != 1:
        probe = probe[:1]
    layers = model.matmul_layers()
    if max_mapped_layers is not None:
        layers = layers[:max_mapped_layers]
    shapes: List[Tuple[int, int, int]] = []
    originals = []
    try:
        for layer in layers:
            original_forward = layer.forward
            originals.append((layer, original_forward))

            def capturing_forward(x, training=False, _layer=layer,
                                  _forward=original_forward):
                if isinstance(_layer, Conv2d):
                    cols = im2col(x, _layer.kernel_size, _layer.stride, _layer.padding)
                    shapes.append((cols.shape[0], cols.shape[1], _layer.out_channels))
                else:
                    x2d = np.atleast_2d(np.asarray(x))
                    shapes.append((x2d.shape[0], _layer.weight.value.shape[0],
                                   _layer.weight.value.shape[1]))
                return _forward(x, training=training)

            layer.forward = capturing_forward
        model.forward(probe, training=False)
    finally:
        for layer, original_forward in originals:
            layer.forward = original_forward
    return shapes


def estimate_conversions_per_sample(model: Model, probe_image: np.ndarray,
                                    macro_config: Optional[MacroConfig] = None,
                                    max_mapped_layers: Optional[int] = None) -> int:
    """Macro conversions one sample would cost if served on the accelerator.

    An upper bound that matches the macro model's accounting for mixed-sign
    activations (two analog passes per tile per row); layers excluded by
    ``max_mapped_layers`` cost nothing, mirroring the ``analog`` backend.
    """
    config = macro_config if macro_config is not None else MacroConfig()
    geometry = AFPRMacro(config)
    total = 0
    for rows, in_features, out_features in _matmul_shapes(
            model, probe_image, max_mapped_layers):
        tiles = tile_weight_matrix(in_features, out_features,
                                   geometry.max_in_features,
                                   geometry.max_out_features)
        total += rows * len(tiles) * 2
    return total
