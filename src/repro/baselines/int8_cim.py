"""Analytical model of an analog INT8 RRAM CIM macro (Table I baseline class).

The paper compares against analog INT8 CIM chips (its refs [11], [13]):
RRAM crossbars with *fixed-range* column ADCs and *bit-serial* (sequential)
input application.  Those two properties are what limits them:

* the fixed-range ADC must be designed for the worst-case MAC result, so it
  wastes energy (and resolution) on typical results,
* applying an 8-bit activation one bit at a time multiplies the number of
  array evaluations and ADC conversions by the activation bit width.

The model exposes those structural parameters so the Table-I benchmark can
show where the 2.841x energy-efficiency and 5.382x throughput gaps come
from.
"""

from __future__ import annotations

import dataclasses

from repro.power.efficiency import MacroSpecification


@dataclasses.dataclass(frozen=True)
class AnalogCIMParameters:
    """Structural and energy parameters of the analog INT8 CIM baseline.

    Defaults are representative of the published analog INT8 CIM macros the
    paper cites (256 x 256 arrays, 8-bit SAR column ADCs, bit-serial inputs)
    and land the model in their published efficiency range (~7 TOPS/W).
    """

    rows: int = 256
    cols: int = 256
    activation_bits: int = 8
    bit_serial: bool = True
    cycle_time: float = 60e-9
    sar_adc_energy: float = 6e-12
    cell_read_energy: float = 25e-15
    driver_energy_per_row_cycle: float = 1e-12
    digital_energy_per_column_cycle: float = 1e-12
    technology_nm: float = 130
    name: str = "Analog INT8 CIM (modelled)"

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1 or self.activation_bits < 1:
            raise ValueError("rows, cols and activation_bits must be >= 1")
        if self.cycle_time <= 0:
            raise ValueError("cycle_time must be positive")


class AnalogInt8CIM:
    """Energy / throughput model of a bit-serial analog INT8 CIM macro."""

    def __init__(self, params: AnalogCIMParameters = AnalogCIMParameters()) -> None:
        self.params = params

    # ------------------------------------------------------------------
    @property
    def cycles_per_matrix(self) -> int:
        """Array evaluations needed for one full-array INT8 MAC."""
        return self.params.activation_bits if self.params.bit_serial else 1

    @property
    def operations_per_matrix(self) -> int:
        """MAC operations of one full-array evaluation (2 ops per cell)."""
        return 2 * self.params.rows * self.params.cols

    @property
    def latency(self) -> float:
        """Latency of one full-array INT8 MAC in seconds."""
        return self.cycles_per_matrix * self.params.cycle_time

    def energy_per_matrix(self) -> float:
        """Energy of one full-array INT8 MAC in joules."""
        p = self.params
        cycles = self.cycles_per_matrix
        adc = p.cols * cycles * p.sar_adc_energy
        array = p.rows * p.cols * p.cell_read_energy * cycles / p.activation_bits
        drivers = p.rows * cycles * p.driver_energy_per_row_cycle
        digital = p.cols * cycles * p.digital_energy_per_column_cycle
        return adc + array + drivers + digital

    def throughput_gops(self) -> float:
        """Peak throughput in GOPS."""
        return self.operations_per_matrix / self.latency / 1e9

    def energy_efficiency_tops_per_watt(self) -> float:
        """Peak energy efficiency in TOPS/W."""
        return self.operations_per_matrix / self.energy_per_matrix() / 1e12

    def specification(self) -> MacroSpecification:
        """Table-I style record of the modelled baseline."""
        p = self.params
        return MacroSpecification(
            name=p.name,
            architecture="Analog-CIM",
            memory="RRAM",
            array_size=f"{p.rows}*{p.cols}",
            technology_nm=p.technology_nm,
            supply_voltage="1.8",
            adc_type="SAR",
            activation_precision="INT8",
            latency_us=self.latency * 1e6,
            throughput_gops=self.throughput_gops(),
            energy_efficiency_tops_per_watt=self.energy_efficiency_tops_per_watt(),
        )
