"""Resistor-string reference DAC for the FP-DAC mantissa network.

The FP-DAC's "reference module provides a 5-bit reference voltage for the DAC
through a resistor network, which can be shared by multiple rows in the array
to save power and area."  The mantissa switch network then selects one tap as
the analog mantissa value ``M_analog`` corresponding to ``1.M``.

The model produces the tap voltages of an N-bit resistor string between a
bottom voltage (representing mantissa 1.0, i.e. ``1.00000``) and a top
voltage (representing ``1.11111``), with optional static resistor mismatch
(INL) drawn once at construction, and a static power estimate for the ladder.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np


@dataclasses.dataclass
class ResistorStringReference:
    """Shared N-bit resistor-string voltage reference.

    Parameters
    ----------
    bits:
        Resolution of the tap ladder (5 for the E2M5 mantissa).
    v_bottom / v_top:
        Voltages at the two ends of the string.  Tap ``k`` nominally sits at
        ``v_bottom + k * (v_top - v_bottom) / 2**bits``.
    unit_resistance:
        Resistance of one ladder segment in ohms (drives static power).
    mismatch_sigma:
        Relative sigma of each unit resistor; accumulating mismatch along the
        string produces integral non-linearity on the taps.
    shared_rows:
        How many DAC rows share this reference (power amortisation).
    rng:
        Random generator for the mismatch draw.
    """

    bits: int = 5
    v_bottom: float = 0.0
    v_top: float = 1.0
    unit_resistance: float = 10e3
    mismatch_sigma: float = 0.0
    shared_rows: int = 576
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        if self.v_top <= self.v_bottom:
            raise ValueError("v_top must exceed v_bottom")
        if self.unit_resistance <= 0:
            raise ValueError("unit_resistance must be positive")
        if self.shared_rows < 1:
            raise ValueError("shared_rows must be >= 1")
        rng = self.rng if self.rng is not None else np.random.default_rng(0)
        segments = np.ones(self.levels, dtype=np.float64)
        if self.mismatch_sigma > 0:
            segments = segments * (
                1.0 + self.mismatch_sigma * rng.standard_normal(self.levels)
            )
            segments = np.clip(segments, 0.01, None)
        # Tap 0 sits exactly at v_bottom and the (virtual) top of the string at
        # v_top; mismatch only perturbs the intermediate taps.
        cumulative = np.concatenate([[0.0], np.cumsum(segments)])
        self._taps = self.v_bottom + (self.v_top - self.v_bottom) * (
            cumulative[:-1] / cumulative[-1]
        )

    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Number of selectable taps."""
        return 1 << self.bits

    @property
    def tap_voltages(self) -> np.ndarray:
        """All tap voltages (index = mantissa code)."""
        return self._taps.copy()

    @property
    def lsb(self) -> float:
        """Nominal voltage difference between adjacent taps."""
        return (self.v_top - self.v_bottom) / self.levels

    def voltage(self, code: np.ndarray) -> np.ndarray:
        """Tap voltage(s) for the given mantissa code(s)."""
        code = np.asarray(code, dtype=np.int64)
        if np.any((code < 0) | (code >= self.levels)):
            raise ValueError(f"mantissa code out of range 0..{self.levels - 1}")
        return self._taps[code]

    def inl(self) -> np.ndarray:
        """Integral non-linearity of each tap in LSBs."""
        ideal = self.v_bottom + np.arange(self.levels) * self.lsb
        return (self._taps - ideal) / self.lsb

    # ------------------------------------------------------------------
    def static_power(self) -> float:
        """Static power of the ladder in watts (V^2 / R_total)."""
        r_total = self.unit_resistance * self.levels
        v_span = self.v_top - self.v_bottom
        return v_span ** 2 / r_total

    def power_per_row(self) -> float:
        """Ladder power amortised over the rows sharing the reference."""
        return self.static_power() / self.shared_rows
