"""Network-to-macro mapping (paper Section III-D and Fig. 4).

Convolutional kernels of shape ``C_out x C_in x k x k`` are flattened into a
``(C_in * k * k) x C_out`` weight matrix and the layer input is expanded into
matching ``C_in * k * k`` patches (im2col), so both convolutions and fully
connected layers become the same matrix product that a crossbar computes.

A weight matrix larger than one macro is tiled:

* the row dimension is cut into chunks of at most 576 (the paper: "when the
  weight matrix exceeds 576, the result of the MAC operation in the CIM
  column is a partial sum" which "the inter-core routing adder" accumulates),
* the column dimension is cut into chunks of at most the macro's signed
  column capacity (128 for a 256-wide differential array).

:class:`MappedLayer` owns one :class:`~repro.core.macro.AFPRMacro` per tile
and performs the partial-sum accumulation digitally through
:class:`RoutingAdder`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import MacroConfig
from repro.core.macro import AFPRMacro
from repro.formats.fp8 import FP16, FloatFormat


# ----------------------------------------------------------------------
# im2col and weight reshaping
# ----------------------------------------------------------------------
def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    if size < 1 or kernel < 1 or stride < 1 or padding < 0:
        raise ValueError("invalid convolution geometry")
    out = (size + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise ValueError("convolution produces an empty output")
    return out


def im2col(inputs: np.ndarray, kernel: int, stride: int = 1, padding: int = 0,
           dtype=np.float64, out: Optional[np.ndarray] = None,
           pad_buffer: Optional[np.ndarray] = None) -> np.ndarray:
    """Expand NCHW inputs into convolution patches.

    Returns an array of shape ``(N * H_out * W_out, C * kernel * kernel)``
    whose rows are the flattened receptive fields, ready to be multiplied by
    a ``(C * k * k, C_out)`` weight matrix.

    ``dtype`` is the working dtype (``None`` keeps the input's own dtype —
    the code-domain execution plan expands uint16 FP8 activation codes, 4x
    less memory traffic than float64).  ``out`` (a C-contiguous
    ``(N, H_out, W_out, C, kernel, kernel)`` staging buffer) and
    ``pad_buffer`` (``(N, C, H+2p, W+2p)``) let callers reuse arena slabs
    across batches instead of allocating per call; values are identical
    either way.
    """
    inputs = np.asarray(inputs) if dtype is None else np.asarray(inputs, dtype=dtype)
    if inputs.ndim != 4:
        raise ValueError("inputs must be NCHW")
    n, c, h, w = inputs.shape
    h_out = conv_output_size(h, kernel, stride, padding)
    w_out = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        if pad_buffer is not None:
            pad_buffer.fill(0)
            pad_buffer[:, :, padding:padding + h, padding:padding + w] = inputs
            inputs = pad_buffer
        else:
            inputs = np.pad(
                inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                mode="constant"
            )
    # Gather patches with stride tricks-free indexing (clear over clever).
    patches = (out if out is not None
               else np.empty((n, h_out, w_out, c, kernel, kernel), dtype=inputs.dtype))
    for i in range(kernel):
        i_end = i + stride * h_out
        for j in range(kernel):
            j_end = j + stride * w_out
            patches[:, :, :, :, i, j] = inputs[:, :, i:i_end:stride, j:j_end:stride].transpose(0, 2, 3, 1)
    return patches.reshape(n * h_out * w_out, c * kernel * kernel)


def col2im_output(columns: np.ndarray, batch: int, out_channels: int,
                  h_out: int, w_out: int) -> np.ndarray:
    """Reshape the matrix-product result back into NCHW feature maps."""
    columns = np.asarray(columns, dtype=np.float64)
    expected = batch * h_out * w_out
    if columns.shape[0] != expected or columns.shape[1] != out_channels:
        raise ValueError(
            f"result shape {columns.shape} does not match "
            f"({expected}, {out_channels})"
        )
    return columns.reshape(batch, h_out, w_out, out_channels).transpose(0, 3, 1, 2)


def conv_weights_to_matrix(weights: np.ndarray) -> np.ndarray:
    """Flatten ``(C_out, C_in, k, k)`` kernels into a ``(C_in*k*k, C_out)`` matrix."""
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 4:
        raise ValueError("convolution weights must be 4-D (C_out, C_in, k, k)")
    c_out = weights.shape[0]
    return weights.reshape(c_out, -1).T


def grouped_conv_weights_to_matrix(weights: np.ndarray, groups: int) -> np.ndarray:
    """Flatten grouped-conv kernels into a block-diagonal weight matrix.

    A grouped convolution with ``(C_out, C_in/g, k, k)`` kernels only
    connects group ``i``'s input channels to group ``i``'s output channels.
    Because im2col flattens patches channel-major, each group's patch
    features occupy a *contiguous* row range of the full ``C_in*k*k``-wide
    matrix — so the grouped conv is exactly a block-diagonal
    ``(C_in*k*k, C_out)`` matrix over the ordinary full-width im2col, with
    one ``(C_in/g*k*k, C_out/g)`` dense block per group and zeros elsewhere.
    :class:`MappedLayer` with ``groups=g`` places only the diagonal blocks
    on macros (per-group tile placement), never materialising crossbars for
    the structural zeros.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 4:
        raise ValueError("convolution weights must be 4-D (C_out, C_in/g, k, k)")
    if groups < 1:
        raise ValueError("groups must be >= 1")
    if groups == 1:
        return conv_weights_to_matrix(weights)
    c_out, c_in_per_group, kernel, _ = weights.shape
    if c_out % groups:
        raise ValueError(f"{c_out} output channels do not divide into {groups} groups")
    out_per_group = c_out // groups
    rows_per_group = c_in_per_group * kernel * kernel
    matrix = np.zeros((groups * rows_per_group, c_out), dtype=np.float64)
    for g in range(groups):
        block = weights[g * out_per_group:(g + 1) * out_per_group]
        matrix[g * rows_per_group:(g + 1) * rows_per_group,
               g * out_per_group:(g + 1) * out_per_group] = (
            block.reshape(out_per_group, -1).T)
    return matrix


# ----------------------------------------------------------------------
# Tiling
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class TileSpec:
    """One rectangular weight tile assigned to one macro."""

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def rows(self) -> int:
        """Number of input features covered by the tile."""
        return self.row_stop - self.row_start

    @property
    def cols(self) -> int:
        """Number of output features covered by the tile."""
        return self.col_stop - self.col_start


def tile_weight_matrix(in_features: int, out_features: int,
                       max_rows: int, max_cols: int) -> List[TileSpec]:
    """Cut an ``in_features x out_features`` matrix into macro-sized tiles."""
    if in_features < 1 or out_features < 1:
        raise ValueError("weight matrix must be non-empty")
    if max_rows < 1 or max_cols < 1:
        raise ValueError("tile limits must be positive")
    tiles = []
    for row_start in range(0, in_features, max_rows):
        row_stop = min(row_start + max_rows, in_features)
        for col_start in range(0, out_features, max_cols):
            col_stop = min(col_start + max_cols, out_features)
            tiles.append(TileSpec(row_start, row_stop, col_start, col_stop))
    return tiles


class RoutingAdder:
    """Digital partial-sum accumulator between macros.

    The inter-core routing adder of the paper accumulates the partial sums of
    row tiles.  Accumulation happens in a wider floating-point format (FP16
    by default) so the adder itself does not become the precision bottleneck;
    passing ``accumulate_format=None`` keeps full float64 accumulation.
    """

    def __init__(self, accumulate_format: Optional[FloatFormat] = FP16) -> None:
        self.accumulate_format = accumulate_format
        self.additions = 0

    def accumulate(self, partials: Sequence[np.ndarray]) -> np.ndarray:
        """Sum a sequence of partial results elementwise."""
        partials = list(partials)
        if not partials:
            raise ValueError("need at least one partial result")
        total = np.zeros_like(np.asarray(partials[0], dtype=np.float64))
        for partial in partials:
            total = total + np.asarray(partial, dtype=np.float64)
            self.additions += total.size
            if self.accumulate_format is not None:
                scale = float(np.max(np.abs(total))) or 1.0
                norm = self.accumulate_format.max_value
                total = self.accumulate_format.quantize(total / scale * norm) / norm * scale
        return total


# ----------------------------------------------------------------------
# A layer mapped onto one or more macros
# ----------------------------------------------------------------------
class MappedLayer:
    """A weight matrix mapped onto as many AFPR-CIM macros as needed.

    Parameters
    ----------
    weights:
        Signed weight matrix of shape ``(in_features, out_features)``.
    macro_config:
        Configuration used for every tile macro.
    routing_adder:
        Adder used to combine row-tile partial sums (a fresh FP16 adder is
        created if omitted).
    ideal_programming:
        Program conductances without write noise (useful for debugging and
        golden-model comparisons).
    groups:
        Grouped/depthwise structure: the weight matrix must be
        block-diagonal with ``groups`` equal blocks (see
        :func:`grouped_conv_weights_to_matrix`), and only the diagonal
        blocks are tiled onto macros — per-group tile placement instead of
        crossbars full of structural zeros.
    """

    def __init__(self, weights: np.ndarray, macro_config: MacroConfig = MacroConfig(),
                 routing_adder: Optional[RoutingAdder] = None,
                 ideal_programming: bool = False,
                 rng: Optional[np.random.Generator] = None,
                 groups: int = 1) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError("weights must be 2-D (in_features, out_features)")
        self.weights = weights
        self.macro_config = macro_config
        self.routing_adder = routing_adder if routing_adder is not None else RoutingAdder()
        self._rng = rng if rng is not None else np.random.default_rng(macro_config.seed)

        in_features, out_features = weights.shape
        probe = AFPRMacro(macro_config, rng=self._rng)
        if groups < 1:
            raise ValueError("groups must be >= 1")
        self.groups = groups
        if groups == 1:
            self.tiles = tile_weight_matrix(
                in_features, out_features, probe.max_in_features, probe.max_out_features
            )
        else:
            self.tiles = self._grouped_tiles(
                in_features, out_features, groups,
                probe.max_in_features, probe.max_out_features
            )
        self.macros: List[AFPRMacro] = []
        for tile in self.tiles:
            macro = AFPRMacro(macro_config, rng=self._rng)
            macro.program_weights(
                weights[tile.row_start:tile.row_stop, tile.col_start:tile.col_stop],
                ideal=ideal_programming,
            )
            self.macros.append(macro)
        # Tile placement is static, so group the row tiles of each output
        # column range once instead of re-deriving the grouping per forward.
        grouped = {}
        for tile, macro in zip(self.tiles, self.macros):
            key = (tile.col_start, tile.col_stop)
            grouped.setdefault(key, []).append((tile, macro))
        self.column_ranges = sorted(grouped.items())

    def _grouped_tiles(self, in_features: int, out_features: int, groups: int,
                       max_rows: int, max_cols: int) -> List[TileSpec]:
        """Per-group tile placement over a block-diagonal weight matrix."""
        if in_features % groups or out_features % groups:
            raise ValueError(
                f"feature counts ({in_features}, {out_features}) must divide "
                f"into {groups} groups"
            )
        in_per_group = in_features // groups
        out_per_group = out_features // groups
        # Off-block-diagonal weight would be silently dropped by per-group
        # placement; refuse it rather than compute the wrong product.
        check = self.weights.copy()
        for g in range(groups):
            check[g * in_per_group:(g + 1) * in_per_group,
                  g * out_per_group:(g + 1) * out_per_group] = 0.0
        if np.any(check != 0.0):
            raise ValueError(
                "grouped mapping requires a block-diagonal weight matrix "
                "(use grouped_conv_weights_to_matrix)"
            )
        tiles: List[TileSpec] = []
        for g in range(groups):
            row_base = g * in_per_group
            col_base = g * out_per_group
            for tile in tile_weight_matrix(in_per_group, out_per_group,
                                           max_rows, max_cols):
                tiles.append(TileSpec(
                    tile.row_start + row_base, tile.row_stop + row_base,
                    tile.col_start + col_base, tile.col_stop + col_base,
                ))
        return tiles

    # ------------------------------------------------------------------
    @property
    def in_features(self) -> int:
        """Input feature count of the mapped layer."""
        return self.weights.shape[0]

    @property
    def out_features(self) -> int:
        """Output feature count of the mapped layer."""
        return self.weights.shape[1]

    @property
    def num_macros(self) -> int:
        """Number of macros this layer occupies."""
        return len(self.macros)

    def set_vectorized_readout(self, enabled: bool) -> None:
        """Switch every tile macro between the batched active-sub-array
        readout (default) and the original full-array reference readout.

        Calibration depends on the readout mode, so flip this before calling
        :meth:`calibrate` (the per-macro calibration cache keys on the mode
        and recalibrates automatically on the next call).
        """
        for macro in self.macros:
            macro.vectorized_readout = enabled

    def calibrate(self, calibration_activations: np.ndarray) -> None:
        """Calibrate every tile macro with the matching slice of the inputs."""
        acts = np.atleast_2d(np.asarray(calibration_activations, dtype=np.float64))
        if acts.shape[1] != self.in_features:
            raise ValueError(
                f"calibration activations have {acts.shape[1]} features, "
                f"expected {self.in_features}"
            )
        for tile, macro in zip(self.tiles, self.macros):
            macro.calibrate(acts[:, tile.row_start:tile.row_stop])

    def forward(self, activations: np.ndarray) -> np.ndarray:
        """Compute ``activations @ weights`` through the mapped macros."""
        acts = np.asarray(activations, dtype=np.float64)
        squeeze = acts.ndim == 1
        acts = np.atleast_2d(acts)
        if acts.shape[1] != self.in_features:
            raise ValueError(
                f"activation length {acts.shape[1]} does not match {self.in_features}"
            )
        output = np.zeros((acts.shape[0], self.out_features), dtype=np.float64)
        # Row tiles of the same column range are accumulated through the
        # routing adder (grouping precomputed at construction).
        for (col_start, col_stop), placements in self.column_ranges:
            partials = [macro.matvec(acts[:, tile.row_start:tile.row_stop])
                        for tile, macro in placements]
            output[:, col_start:col_stop] = self.routing_adder.accumulate(partials)
        return output[0] if squeeze else output

    __call__ = forward

    def total_conversions(self) -> int:
        """Macro conversions performed so far (across all tiles)."""
        return sum(macro.stats.conversions for macro in self.macros)

    def ideal_forward(self, activations: np.ndarray) -> np.ndarray:
        """Digital floating-point reference of the mapped computation."""
        return np.asarray(activations, dtype=np.float64) @ self.weights
