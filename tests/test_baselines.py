"""Unit tests for the baseline models and the published Table-I records."""

import numpy as np
import pytest

from repro.baselines import (
    AnalogCIMParameters,
    AnalogInt8CIM,
    DigitalFPCIM,
    FP8Accelerator,
    IntADCConfig,
    IntSingleSlopeADC,
    PAPER_AFPR_RESULTS,
    PUBLISHED_MACROS,
    paper_claimed_ratios,
    published_table,
    recomputed_ratios,
)


class TestIntSingleSlopeADC:
    def test_conversion_time_is_500ns(self):
        assert IntSingleSlopeADC().conversion_time == pytest.approx(500e-9)

    def test_codes_monotonic(self):
        adc = IntSingleSlopeADC()
        currents = np.linspace(0, adc.full_scale_current, 300)
        codes = adc.convert(currents)
        assert np.all(np.diff(codes) >= 0)
        assert codes[0] == 0
        assert codes[-1] == 255

    def test_uniform_lsb(self):
        adc = IntSingleSlopeADC()
        lsb = adc.config.lsb_current
        estimate = adc.convert_value(np.array([10 * lsb]))
        assert estimate[0] == pytest.approx(10 * lsb, abs=lsb / 2 + 1e-12)

    def test_small_current_relative_error_large(self):
        """The motivation for the adaptive FP-ADC: fixed range wastes small signals."""
        adc = IntSingleSlopeADC()
        small = adc.config.lsb_current * 0.4
        large = adc.full_scale_current * 0.9
        err = adc.relative_quantisation_error(np.array([small, large]))
        assert err[0] > err[1]
        assert err[0] > 0.5

    def test_clipping(self):
        adc = IntSingleSlopeADC()
        assert adc.convert(np.array([adc.full_scale_current * 3]))[0] == 255
        assert adc.convert(np.array([-1e-6]))[0] == 0

    def test_noise_option(self):
        adc = IntSingleSlopeADC(IntADCConfig(noise_rms=0.05))
        codes = {int(adc.convert(np.array([5e-6]))[0]) for _ in range(50)}
        assert len(codes) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            IntADCConfig(bits=0)
        with pytest.raises(ValueError):
            IntADCConfig(v_full_scale=-1.0)


class TestModelledBaselines:
    def test_analog_int8_cim_in_published_range(self):
        model = AnalogInt8CIM()
        assert 4.0 < model.energy_efficiency_tops_per_watt() < 10.0
        assert 200 < model.throughput_gops() < 400

    def test_bit_serial_costs_throughput(self):
        serial = AnalogInt8CIM(AnalogCIMParameters(bit_serial=True))
        parallel = AnalogInt8CIM(AnalogCIMParameters(bit_serial=False))
        assert parallel.throughput_gops() > serial.throughput_gops()

    def test_digital_fp_cim_in_published_range(self):
        model = DigitalFPCIM()
        assert 2.0 < model.energy_efficiency_tops_per_watt() < 6.0
        assert 0.0 < model.alignment_share() < 1.0

    def test_fp8_accelerator_in_published_range(self):
        model = FP8Accelerator()
        assert 3.0 < model.energy_efficiency_tops_per_watt() < 7.0
        assert 0.0 < model.memory_share() < 1.0

    def test_specifications_have_table_fields(self):
        for spec in (AnalogInt8CIM().specification(), DigitalFPCIM().specification(),
                     FP8Accelerator().specification()):
            assert spec.throughput_gops > 0
            assert spec.energy_efficiency_tops_per_watt > 0
            assert spec.architecture

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AnalogCIMParameters(rows=0)


class TestPublishedRecords:
    def test_all_columns_present(self):
        assert set(PUBLISHED_MACROS) == {"nature22", "tcasi20", "isscc22", "vlsi21", "isscc21"}
        assert set(PAPER_AFPR_RESULTS) == {"afpr_e2m5", "afpr_e3m4"}

    def test_published_table_order(self):
        table = published_table()
        assert table[0].name.startswith("AFPR-CIM (E2M5")
        assert len(table) == 7

    def test_paper_ratios_recompute_from_published_numbers(self):
        """The paper's own ratios follow from its own table entries."""
        ratios = recomputed_ratios(PAPER_AFPR_RESULTS["afpr_e2m5"])
        claimed = paper_claimed_ratios()
        for key, value in claimed.items():
            assert ratios[key] == pytest.approx(value, rel=0.01), key

    def test_claimed_ratios_copy_is_safe(self):
        ratios = paper_claimed_ratios()
        ratios["energy_efficiency_vs_fp8_accelerator"] = 0.0
        assert paper_claimed_ratios()["energy_efficiency_vs_fp8_accelerator"] > 0
