"""The asyncio inference service: queue -> dynamic batcher -> scheduler ->
execution backend.

:class:`InferenceService` turns the blocking ``run_model`` world of
:mod:`repro.exec` into a request-serving system: clients submit single
images (or small stacked requests) and await logits; a dynamic micro-batcher
coalesces the queue into execution batches; a multi-macro scheduler places
each batch on one of ``num_workers`` workers, each owning its own model
replica, prepared execution backend (via
:class:`~repro.exec.engine.BatchRunner`) and occupancy-tracked
:class:`~repro.core.accelerator.AFPRAccelerator`.  Batch forwards run in
worker threads (NumPy releases the GIL in the kernels that matter), so
replicas genuinely overlap.

Determinism contract: requests are batched strictly in arrival order, and a
batch's logits are exactly ``backend.forward`` of the stacked request rows —
so when the coalesced batch equals the batch a direct ``run_model`` call
would see, the served logits are bit-identical on every backend, and on the
row-independent digital backends (``ideal``, ``fake_quant``) they are
bit-identical regardless of how the batcher happened to split the traffic.

Fault tolerance: a worker-level fault (process SIGKILLed, shm ring broken,
pipeline stage death) is classified apart from request-level errors.  The
dead worker is marked unplaceable, its in-flight and queued batches are
re-dispatched to surviving replicas up to ``max_retries`` attempts, and a
background task respawns the worker — loading its compiled plan from the
on-disk :class:`~repro.exec.plan.PlanCache` when one is configured, so
respawn skips recompilation.  Request-level errors (a forward exception)
still fail only their own batch: they would fail identically on any
replica.  **Noise-stream caveat**: a re-dispatched batch re-runs on a
replica whose analog noise streams have advanced differently, so retried
analog batches draw fresh noise — bit-identity against a single fault-free
run is only guaranteed for the no-fault path.  Runs that need bit identity
even under faults should pin ``retry_policy="fail_fast"``, which restores
the fail-the-batch behaviour while keeping respawn.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import copy
import dataclasses
import pickle
import time
import warnings
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exec.backend import ExecutionBackend, ExecutionContext
from repro.exec.engine import BatchRunner
from repro.exec.plan import PlanCache, plan_fingerprint
from repro.exec.registry import create_backend
from repro.nn.model import Model
from repro.obs.trace import PlanTraceBuffer, RequestTrace, Tracer, plan_trace
from repro.power.efficiency import energy_per_conversion
from repro.serve.batcher import (
    CLOSE,
    DEFAULT_PRIORITY,
    DynamicBatcher,
    Request,
    fail_requests,
    scatter_results,
    stack_requests,
)
from repro.serve.energy import estimate_conversions_per_sample
from repro.serve.metrics import (
    MetricsSnapshot,
    ServiceMetrics,
    StageOccupancy,
    WorkerSnapshot,
)
from repro.serve.scheduler import (
    NoAliveWorkersError,
    WorkerState,
    build_worker_states,
    create_scheduler,
)
from repro.serve.shm import ShmChannel, SlotRing


#: Execution plan owned by one process-pool worker (set by the initializer).
_PROCESS_PLAN = None

#: Worker-side (requests, responses) ring pair once the parent attached one.
_PROCESS_RINGS: Optional[Tuple[SlotRing, SlotRing]] = None


def _init_process_worker(payload: bytes) -> None:
    """Process-pool initializer: unpickle the shipped execution plan.

    Runs once per worker process.  The plan arrives as explicit pickle bytes
    (not fork-inherited state) so ``workers="process"`` behaves identically
    under every multiprocessing start method.
    """
    global _PROCESS_PLAN
    _PROCESS_PLAN = pickle.loads(payload)


def _process_ready() -> Optional[int]:
    """Probe task: the plan's conversion counter, or None if uninitialised.

    The counter is non-zero right after prepare (macro calibration spends
    conversions), so the parent records it as the metering baseline — the
    first served batch must not be billed for preparation, exactly as the
    thread workers' per-forward deltas never are.
    """
    if _PROCESS_PLAN is None:
        return None
    return _PROCESS_PLAN.conversions()


def _process_forward(images: np.ndarray, traced: bool = False) -> Tuple:
    """Pickle-transport batch: (logits, total conversions, forward s, spans).

    ``traced`` batches record per-layer plan spans into a worker-local
    buffer (this interpreter's ``perf_counter`` clock, relative to the
    forward start) that ride home on the result tuple for the parent to
    re-anchor.
    """
    start = time.perf_counter()
    spans: List = []
    if traced:
        buffer = PlanTraceBuffer(t0=start)
        with plan_trace(buffer):
            logits = _PROCESS_PLAN.forward(images)
        spans = buffer.records
    else:
        logits = _PROCESS_PLAN.forward(images)
    return (logits, _PROCESS_PLAN.conversions(),
            time.perf_counter() - start, spans)


def _process_attach_rings(request_name: str, response_name: str, slots: int,
                          request_nbytes: int, response_nbytes: int) -> bool:
    """Attach the parent's shared-memory rings (worker side, never unlinks)."""
    global _PROCESS_RINGS
    _PROCESS_RINGS = (
        SlotRing.attach(request_name, slots, request_nbytes),
        SlotRing.attach(response_name, slots, response_nbytes),
    )
    return True


def _process_forward_shm(slot: int, shape: Tuple[int, ...],
                         traced: bool = False) -> Tuple:
    """Shared-memory batch: read the request slot, run, fill the response slot.

    The plan consumes a zero-copy view of the request slot (forwards never
    mutate their input) and the logits are written into the matching
    response slot; only these few coordinates cross the executor pipe.
    Logits too large for the slot fall back to being returned by value.
    Traced batches additionally ship their per-layer plan spans (see
    :func:`_process_forward`) — span tuples are tiny, so they ride the
    pipe even on the shared-memory transport.
    """
    requests, responses = _PROCESS_RINGS
    images = requests.view(slot, shape)
    start = time.perf_counter()
    spans: List = []
    if traced:
        buffer = PlanTraceBuffer(t0=start)
        with plan_trace(buffer):
            logits = _PROCESS_PLAN.forward(images)
        spans = buffer.records
    else:
        logits = _PROCESS_PLAN.forward(images)
    forward_s = time.perf_counter() - start
    logits = np.ascontiguousarray(logits, dtype=np.float64)
    total = _PROCESS_PLAN.conversions()
    if responses.fits(logits.nbytes):
        responses.write(slot, logits)
        return ("shm", logits.shape, total, forward_s, spans)
    return ("pickle", logits, total, forward_s, spans)


def _process_profile() -> Dict[str, float]:
    """Per-stage wall-clock breakdown of the worker's plan."""
    return _PROCESS_PLAN.stage_profile()


class _ThreadWorker:
    """In-loop worker: a prepared BatchRunner driven via ``asyncio.to_thread``."""

    mode = "thread"

    def __init__(self, runner: BatchRunner) -> None:
        self.runner = runner

    async def forward(self, images: np.ndarray, traced: bool = False
                      ) -> Tuple[np.ndarray, int, Optional[List]]:
        """Run one batch; returns (logits, measured conversions, remote spans).

        ``remote`` is None untraced, else ``[(None, forward_s, records)]``
        — the worker-clock span payload :meth:`Tracer.attach_remote`
        re-anchors under the dispatch span.  Thread workers share the
        service clock, but shipping relative spans keeps one format across
        all three substrates.
        """
        before = self.runner.conversions()
        if traced:
            logits, forward_s, records = await asyncio.to_thread(
                self._traced_forward, images)
            remote: Optional[List] = [(None, forward_s, records)]
        else:
            logits = await asyncio.to_thread(self.runner.forward, images)
            remote = None
        return logits, self.runner.conversions() - before, remote

    def _traced_forward(self, images: np.ndarray) -> Tuple:
        # Runs inside the asyncio.to_thread worker thread, so the
        # thread-local plan-trace buffer never leaks across concurrent
        # batches on other threads.
        start = time.perf_counter()
        buffer = PlanTraceBuffer(t0=start)
        with plan_trace(buffer):
            logits = self.runner.forward(images)
        return logits, time.perf_counter() - start, buffer.records

    async def stage_profile(self) -> Dict[str, float]:
        """The runner's plan-stage breakdown."""
        return self.runner.stage_profile()

    async def close(self) -> None:
        """Tear the backend off the replica."""
        await asyncio.to_thread(self.runner.close)


class _ProcessWorker:
    """Out-of-process worker: a pickled plan running in its own interpreter.

    One single-process executor per worker keeps batch→worker affinity (the
    scheduler's placement decisions stay meaningful) and gives each plan a
    real core of its own — NumPy sections that hold the GIL no longer
    serialise against the other replicas.

    Transport: ``"shm"`` (default) serves steady-state batches through the
    parent-owned shared-memory rings of :mod:`repro.serve.shm` — one copy
    in, one copy out, a fixed slot count with backpressure and only slot
    coordinates on the executor pipe.  The first batch rides the pickle
    path and teaches the ring its slot layout; batches that do not fit a
    slot (oversized one-off requests) fall back to pickling per batch.
    ``"pickle"`` keeps the original serialise-every-batch transport (the
    benchmark baseline).  ``transport_s`` accumulates the time each batch
    spent outside the remote forward — serialisation, copies and executor
    round-trip — and feeds the ``--profile`` transport row.
    """

    mode = "process"

    def __init__(self, payload: bytes, transport: str = "shm",
                 max_batch: int = 64, slots: int = 4) -> None:
        self.executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=1, initializer=_init_process_worker, initargs=(payload,))
        self.transport = transport
        self.max_batch = max(int(max_batch), 1)
        self.slots = max(int(slots), 1)
        self.transport_s = 0.0
        self._conversions_total = 0
        self._channel: Optional[ShmChannel] = None
        self._free_slots: Optional[asyncio.Queue] = None
        self._logit_row_nbytes = 0

    async def start(self) -> None:
        """Fail fast if the worker process cannot reconstruct the plan."""
        loop = asyncio.get_running_loop()
        baseline = await loop.run_in_executor(self.executor, _process_ready)
        if baseline is None:
            raise RuntimeError("process worker failed to initialise its plan")
        self._conversions_total = baseline

    async def _build_channel(self, images: np.ndarray, logits: np.ndarray) -> None:
        """Size and attach the rings from the first served batch's layout."""
        rows = max(int(images.shape[0]), 1)
        row_nbytes = max(images.nbytes // rows, 1)
        logit_row_nbytes = max(logits.nbytes // rows, 8)
        slot_rows = max(self.max_batch, rows)
        loop = asyncio.get_running_loop()
        channel: Optional[ShmChannel] = None
        try:
            channel = ShmChannel(self.slots, slot_rows * row_nbytes,
                                 slot_rows * logit_row_nbytes)
            await loop.run_in_executor(self.executor, _process_attach_rings,
                                       *channel.describe())
        except Exception as exc:  # noqa: BLE001 — /dev/shm unavailable, worker dead…
            # Shared memory is an optimisation; keep serving over pickle —
            # but loudly, so an unmounted /dev/shm cannot silently turn an
            # A/B transport comparison into pickle-vs-pickle.
            if channel is not None:
                channel.close(unlink=True)
            self.transport = "pickle"
            warnings.warn(
                f"shared-memory transport unavailable ({exc!r}); "
                "process worker falls back to the pickle transport",
                RuntimeWarning, stacklevel=2)
            return
        self._channel = channel
        self._logit_row_nbytes = logit_row_nbytes
        self._free_slots = asyncio.Queue()
        for slot in range(self.slots):
            self._free_slots.put_nowait(slot)

    def _slot_serves(self, images: np.ndarray) -> bool:
        return (self._channel is not None
                and self._channel.requests.fits(images.nbytes)
                and self._channel.responses.fits(
                    int(images.shape[0]) * self._logit_row_nbytes))

    @property
    def shm_segment_names(self) -> List[str]:
        """Names of this worker's segments (empty on the pickle transport)."""
        return [] if self._channel is None else self._channel.segment_names

    async def forward(self, images: np.ndarray, traced: bool = False
                      ) -> Tuple[np.ndarray, int, Optional[List]]:
        """Run one batch; returns (logits, measured conversions, remote spans).

        ``remote`` (traced batches only) is ``[(None, forward_s, records)]``
        — the worker interpreter's relative-clock spans, piggybacked on the
        result tuple over whichever transport served the batch.
        """
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        if self._slot_serves(images):
            # Backpressure: wait for a free slot instead of buffering.
            slot = await self._free_slots.get()
            try:
                self._channel.requests.write(slot, images)
                outcome = await loop.run_in_executor(
                    self.executor, _process_forward_shm, slot, images.shape,
                    traced)
                if outcome[0] == "shm":
                    _, shape, total, forward_s, spans = outcome
                    # Copy out before the slot is released for reuse.
                    logits = np.array(self._channel.responses.view(slot, shape))
                else:
                    _, logits, total, forward_s, spans = outcome
            finally:
                self._free_slots.put_nowait(slot)
        else:
            logits, total, forward_s, spans = await loop.run_in_executor(
                self.executor, _process_forward, images, traced)
            if self.transport == "shm" and self._channel is None:
                await self._build_channel(images, logits)
        measured = total - self._conversions_total
        self._conversions_total = total
        self.transport_s += max(time.perf_counter() - start - forward_s, 0.0)
        remote = [(None, forward_s, spans)] if traced else None
        return logits, measured, remote

    async def stage_profile(self) -> Dict[str, float]:
        """The remote plan's stage breakdown plus parent-side transport time."""
        loop = asyncio.get_running_loop()
        profile = await loop.run_in_executor(self.executor, _process_profile)
        profile["transport_s"] = self.transport_s
        return profile

    async def close(self) -> None:
        """Shut the worker process down and unlink its shared memory.

        The parent owns the segments, so they are removed even when the
        worker process already crashed mid-batch.
        """
        try:
            await asyncio.to_thread(self.executor.shutdown, True)
        finally:
            if self._channel is not None:
                self._channel.close(unlink=True)
                self._channel = None


class _PipelineWorker:
    """Sharded worker: the replica's plan split across pipeline stage processes.

    The replica's compiled plan is cut at layer boundaries into per-stage
    partial plans (greedy cost balance under the ``macro_budget`` crossbar
    constraint — see :mod:`repro.shard.partition`), each stage runs in its
    own process, and batches stream between stages over per-edge
    shared-memory slot rings (:class:`repro.shard.pipeline.ShardedPipeline`).
    Unlike the one-batch-at-a-time workers above, a pipeline worker serves
    ``max_inflight`` batches concurrently — that overlap across stages is
    the throughput win — so the service's worker loop pumps it with
    concurrent tasks instead of awaiting each batch.

    Submissions are ordered by an asyncio lock: batches must *enter* the
    pipeline in dispatch order (the FIFO stage rings then preserve it),
    which is what keeps pipelined serving bit-identical to single-worker
    serving even for the order-sensitive analog noise streams.
    """

    mode = "pipeline"

    def __init__(self, partition, max_batch: int = 64, slots: int = 2) -> None:
        from repro.shard.pipeline import ShardedPipeline

        self.partition = partition
        self.pipeline = ShardedPipeline(partition.payloads,
                                        max_batch=max_batch, slots=slots)
        #: Batches the worker loop may keep in flight at once.
        self.max_inflight = partition.num_stages + max(int(slots), 1)
        self.transport_s = 0.0
        self.stage_stats: List[Dict] = []
        self._conversions_total = 0
        self._submit_lock: Optional[asyncio.Lock] = None

    async def start(self) -> None:
        """Spawn the stage processes; fails fast if a stage plan won't load."""
        self._submit_lock = asyncio.Lock()
        await asyncio.to_thread(self.pipeline.start)

    @property
    def shm_segment_names(self) -> List[str]:
        """Names of the live stage-ring segments (for the leak tests)."""
        return self.pipeline.segment_names

    async def forward(self, images: np.ndarray, traced: bool = False
                      ) -> Tuple[np.ndarray, int, Optional[List]]:
        """Run one batch; returns (logits, measured conversions, remote spans).

        For traced batches every stage ships its per-layer spans and this
        batch's forward seconds in its stats dict; ``remote`` lays them out
        in stage order — ``[(stage_index, batch_forward_s, spans), ...]`` —
        so the parent renders the stages sequentially under the dispatch
        span (their real overlap is across *batches*, not within one).
        """
        loop = asyncio.get_running_loop()
        async with self._submit_lock:
            # submit() may block on edge-0 backpressure; keep it off the
            # event loop, but under the lock so batches enter in order.
            future = await loop.run_in_executor(None, self.pipeline.submit,
                                                images, traced)
        logits, stats = await asyncio.wrap_future(future)
        # Each stage stamps its cumulative conversion count as the batch
        # passes, so a completed batch carries a consistent "all stages
        # through batch b" total; deltas between completions meter batches.
        total = sum(stage["conversions"] for stage in stats)
        measured = total - self._conversions_total
        self._conversions_total = total
        self.stage_stats = stats
        self.transport_s = sum(stage["transport_s"] for stage in stats)
        remote = None
        if traced:
            remote = [
                (stage.get("stage", position),
                 stage.get("batch_forward_s", 0.0),
                 stage.get("spans", []))
                for position, stage in enumerate(stats)
            ]
        return logits, measured, remote

    async def stage_profile(self) -> Dict[str, float]:
        """Summed plan-stage breakdown plus a per-pipeline-stage list."""
        stats = self.pipeline.stage_stats() or self.stage_stats
        combined: Dict[str, float] = {
            "dac_s": 0.0, "crossbar_s": 0.0, "adc_s": 0.0, "digital_s": 0.0,
            "total_s": 0.0, "forwards": 0.0, "transport_s": 0.0,
            "bubble_s": 0.0,
        }
        stages = []
        for stage in stats:
            profile = dict(stage.get("profile", {}))
            for key in ("dac_s", "crossbar_s", "adc_s", "digital_s",
                        "total_s"):
                combined[key] += float(profile.get(key, 0.0))
            combined["forwards"] = max(combined["forwards"],
                                       float(profile.get("forwards", 0.0)))
            combined["transport_s"] += float(stage.get("transport_s", 0.0))
            combined["bubble_s"] += float(stage.get("bubble_s", 0.0))
            profile["transport_s"] = float(stage.get("transport_s", 0.0))
            profile["bubble_s"] = float(stage.get("bubble_s", 0.0))
            stages.append({
                "stage": stage.get("stage"),
                "layers": list(stage.get("layers", (0, 0))),
                "batches": stage.get("batches", 0),
                "profile": profile,
            })
        combined["stages"] = stages
        return combined

    async def close(self) -> None:
        """Stop the stage processes and unlink every stage-ring segment."""
        await asyncio.to_thread(self.pipeline.close)


class ServiceClosedError(RuntimeError):
    """Raised when submitting to a service that is not accepting requests."""


class ServiceOverloadedError(RuntimeError):
    """Raised (via the request future) when the service backlog is full."""


@dataclasses.dataclass
class ServeConfig:
    """Configuration of an :class:`InferenceService`.

    Attributes
    ----------
    backend:
        Registered backend name (instances are allowed for a single
        worker only — backend state cannot be shared across replicas).
    backend_options:
        Keyword arguments for ``create_backend`` when ``backend`` is a name.
    max_batch:
        Flush a batch at this many sample rows.
    max_wait_ms:
        Flush a non-full batch this long after its oldest request.
    num_workers:
        Model replicas (each with its own prepared backend).
    workers:
        Worker substrate: ``"thread"`` (default) runs each replica's
        forwards in worker threads of the service process; ``"process"``
        builds each replica's execution plan once, pickles it and ships it
        to a dedicated single-process executor — real cores instead of
        GIL-shared threads, with deterministic per-worker state (replica
        ``i`` is constructed by the same seeded recipe in both modes, so
        served logits match the in-loop workers bit for bit).
    transport:
        Batch transport of ``workers="process"``: ``"shm"`` (default)
        moves images and logits through parent-owned shared-memory rings
        (zero-copy views in the worker, fixed slot count with backpressure,
        unlinked on close); ``"pickle"`` serialises every batch through the
        executor pipe — the pre-shared-memory behaviour, kept as the
        benchmark baseline.  Ignored by thread workers.
    transport_slots:
        Ring slots per process worker (the in-flight bound of the
        shared-memory transport); also the per-edge slot count of the
        pipeline stage rings.
    pipeline_stages:
        ``>= 2`` serves each replica as a sharded stage pipeline: the
        compiled plan is cut at layer boundaries into that many per-stage
        partial plans (cost-balanced on ``pipeline_probe`` /
        ``context.calibration`` when available), each stage runs in its
        own process, and batches stream between stages over shared-memory
        slot rings with backpressure (:mod:`repro.shard`).  ``1`` (the
        default) keeps the ordinary one-worker-per-replica modes.
    pipeline_probe:
        Optional representative input batch used to measure per-layer cost
        for the pipeline partitioner (falls back to ``context.calibration``,
        then to a parameter-count proxy).
    macro_budget:
        Per-worker crossbar capacity in macros.  With ``pipeline_stages >=
        2`` it caps every stage's mapped-macro footprint (the partitioner
        cuts so each stage fits); with one stage a model whose mapped tiles
        exceed the budget is rejected at ``start`` — shard it instead.
        ``None`` (default) models unlimited capacity.
    macros_per_worker:
        Modelled AFPR macros per worker (occupancy accounting).
    policy:
        Scheduling policy name (``round_robin`` or ``least_loaded``).
    queue_capacity:
        Admission-control bound: reject arrivals while this many admitted
        requests are still outstanding (queued, batched or in flight on a
        worker — ``None`` = unbounded).  Bounding only the raw request
        queue would be useless, since the dispatcher drains it into the
        per-worker queues immediately.
    context:
        Execution context shared by every worker's backend (calibration,
        macro config, formats, seed).
    estimate_energy:
        Estimate conversions for digital backends so energy-per-request is
        reported even when the backend meters none.
    retry_policy:
        What happens to the in-flight batches of a worker that *died*
        (process exit, broken shm transport, pipeline stage death — never
        plain forward exceptions, which fail only their own batch).
        ``"redispatch"`` (default) re-queues them onto surviving replicas
        up to ``max_retries`` attempts.  Retried analog batches draw fresh
        noise (the replacement replica's streams have advanced
        differently), so bit-identity-critical runs should pin
        ``"fail_fast"``, which fails the dead worker's batches immediately
        (respawn still restores capacity).
    max_retries:
        Re-dispatch attempts per batch before its requests fail.
    respawn:
        Rebuild a dead worker in the background (same replica recipe; the
        plan cache makes this recompile-free for process workers).
    recovery_wait_s:
        How long a batch may wait for a respawn when *no* worker is alive
        before its requests fail.
    plan_cache:
        Directory of the on-disk compiled-plan cache
        (:class:`repro.exec.plan.PlanCache`).  Process-worker plans are
        looked up by model/backend/context fingerprint so cold starts and
        respawns skip plan compilation; ``None`` (default) disables the
        cache (respawns still reuse the in-memory payload).
    priority_classes:
        Optional ``{class_name: max_wait_ms}`` SLO tiers.  A request's
        class picks its flush-deadline budget (see
        :class:`~repro.serve.batcher.DynamicBatcher`); unknown class names
        are rejected at submit.  ``None`` keeps the single global
        ``max_wait_ms`` for everyone.
    autoscale:
        Enable queue-depth/occupancy driven replica autoscaling: spawn a
        worker when the outstanding backlog exceeds one ``max_batch`` per
        alive worker, retire the newest one after a sustained idle period.
        The pool stays within ``[min_workers, max_workers]``.
    min_workers / max_workers:
        Autoscaling bounds (default: both ``num_workers``, i.e. no
        scaling even when ``autoscale`` is on).
    autoscale_interval_ms:
        Period of the autoscaler's signal sampling.
    scale_down_idle_ticks:
        Consecutive idle autoscaler ticks before a replica is retired.
    trace_sample_rate:
        Per-request probability (``0..1``) of recording a full distributed
        span tree — queue wait, batch formation, dispatch, worker/stage
        forwards, per-layer DAC/crossbar/ADC — for that request
        (:mod:`repro.obs`).  Sampling is seeded from ``context.seed`` so
        traced runs are reproducible, and it never touches the numpy RNG
        streams, so sampled serving stays bit-identical to untraced
        serving.  ``0`` (default) disables tracing; the remaining cost is
        one attribute check per request.
    trace_max_spans:
        Bound on retained spans; spans past it are counted as dropped
        instead of growing memory without limit.
    """

    backend: Union[str, ExecutionBackend] = "ideal"
    backend_options: Dict = dataclasses.field(default_factory=dict)
    max_batch: int = 64
    max_wait_ms: float = 2.0
    num_workers: int = 1
    workers: str = "thread"
    transport: str = "shm"
    transport_slots: int = 4
    pipeline_stages: int = 1
    pipeline_probe: Optional[np.ndarray] = None
    macro_budget: Optional[int] = None
    macros_per_worker: int = 8
    policy: str = "round_robin"
    queue_capacity: Optional[int] = None
    context: ExecutionContext = dataclasses.field(default_factory=ExecutionContext)
    estimate_energy: bool = True
    retry_policy: str = "redispatch"
    max_retries: int = 2
    respawn: bool = True
    recovery_wait_s: float = 30.0
    plan_cache: Optional[str] = None
    priority_classes: Optional[Dict[str, float]] = None
    autoscale: bool = False
    min_workers: Optional[int] = None
    max_workers: Optional[int] = None
    autoscale_interval_ms: float = 20.0
    scale_down_idle_ticks: int = 5
    trace_sample_rate: float = 0.0
    trace_max_spans: int = 200_000


class InferenceService:
    """Dynamic-batching inference service over the execution-backend registry."""

    def __init__(self, model: Model, config: Optional[ServeConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else ServeConfig()
        if isinstance(self.config.backend, ExecutionBackend) and self.config.num_workers > 1:
            raise ValueError(
                "a backend instance cannot be shared across workers; "
                "pass a registered backend name for num_workers > 1"
            )
        if self.config.workers not in ("thread", "process"):
            raise ValueError(
                f"unknown worker mode {self.config.workers!r}; "
                "choose 'thread' or 'process'"
            )
        if self.config.transport not in ("shm", "pickle"):
            raise ValueError(
                f"unknown process transport {self.config.transport!r}; "
                "choose 'shm' or 'pickle'"
            )
        if self.config.pipeline_stages < 1:
            raise ValueError("pipeline_stages must be >= 1")
        if (self.config.macro_budget is not None
                and self.config.macro_budget < 1):
            raise ValueError("macro_budget must be >= 1 (or None)")
        if self.config.retry_policy not in ("redispatch", "fail_fast"):
            raise ValueError(
                f"unknown retry policy {self.config.retry_policy!r}; "
                "choose 'redispatch' or 'fail_fast'"
            )
        if self.config.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        for name, wait_ms in (self.config.priority_classes or {}).items():
            if wait_ms < 0:
                raise ValueError(
                    f"priority class {name!r} max_wait_ms must be >= 0")
        low = (self.config.min_workers if self.config.min_workers is not None
               else self.config.num_workers)
        high = (self.config.max_workers if self.config.max_workers is not None
                else self.config.num_workers)
        if self.config.autoscale and (low < 1 or high < low):
            raise ValueError(
                f"autoscale bounds min_workers={low}, max_workers={high} "
                "must satisfy 1 <= min <= max"
            )
        self.metrics = ServiceMetrics(
            energy_per_conversion_j=energy_per_conversion(self.config.context.macro_config)
        )
        # The Tracer validates trace_sample_rate itself; seeding from the
        # execution context's seed (its own random.Random, never the numpy
        # streams) makes which requests get traced reproducible without
        # perturbing served numerics.
        self.tracer = Tracer(
            sample_rate=self.config.trace_sample_rate,
            seed=getattr(self.config.context, "seed", 0),
            max_spans=self.config.trace_max_spans,
        )
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[DynamicBatcher] = None
        self._worker_states: List[WorkerState] = []
        self._workers: List[Optional[Union[_ThreadWorker, _ProcessWorker,
                                           _PipelineWorker]]] = []
        self._worker_queues: List[asyncio.Queue] = []
        self._tasks: List[asyncio.Task] = []
        self._loop_tasks: Dict[int, asyncio.Task] = {}
        self._scheduler = None
        self._conversions_per_sample: Optional[int] = None
        self._outstanding = 0
        self._started = False
        self._accepting = False
        self._stopping = False
        self._worker_mode = ("pipeline" if self.config.pipeline_stages > 1
                             else self.config.workers)
        self._plan_cache: Optional[PlanCache] = None
        self._plan_payload: Optional[bytes] = None
        self._pipeline_partition = None
        self._respawn_tasks: set = set()
        self._autoscale_task: Optional[asyncio.Task] = None
        self._signature: Optional[Tuple[int, ...]] = None
        self._degraded_since: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Prepare every worker replica and start the serving tasks."""
        if self._started:
            raise RuntimeError("service already started")
        config = self.config
        # Rebuild all per-run state so a stopped service can start again:
        # queues from a previous run are bound to that run's event loop.
        self._queue = asyncio.Queue()
        class_wait_s = {name: wait_ms / 1e3
                        for name, wait_ms in (config.priority_classes or {}).items()}
        self._batcher = DynamicBatcher(self._queue, max_batch=config.max_batch,
                                       max_wait_s=config.max_wait_ms / 1e3,
                                       class_wait_s=class_wait_s)
        self._worker_queues = []
        self._workers = []
        self._outstanding = 0
        self._stopping = False
        self._plan_payload = None
        self._pipeline_partition = None
        self._respawn_tasks = set()
        self._degraded_since = None
        self._plan_cache = (PlanCache(config.plan_cache)
                            if config.plan_cache else None)
        # The admission signature locks from the calibration batch when one
        # is available, else from the first admitted request.
        self._signature = None
        calibration = config.context.calibration
        if calibration is not None:
            calibration = np.asarray(calibration)
            if calibration.ndim == 4:
                self._signature = tuple(int(d) for d in calibration.shape[1:])
        self._worker_states = build_worker_states(
            config.num_workers, macro_config=config.context.macro_config,
            macros_per_worker=config.macros_per_worker, mode=self._worker_mode,
        )
        self._scheduler = create_scheduler(config.policy, self._worker_states)
        try:
            for index in range(config.num_workers):
                worker = await self._build_worker()
                self._workers.append(worker)
                self._worker_queues.append(asyncio.Queue())
        except Exception:
            # A failed prepare mid-pool must not leave earlier workers
            # attached or the service half-initialised for a retry.
            for worker in self._workers:
                if worker is not None:
                    await worker.close()
            self._workers = []
            self._worker_queues = []
            self._worker_states = []
            self._scheduler = None
            self._queue = None
            self._batcher = None
            raise
        self._loop_tasks = {
            index: asyncio.create_task(self._worker_loop(index),
                                       name=f"serve-worker-{index}")
            for index in range(config.num_workers)
        }
        self._tasks = list(self._loop_tasks.values())
        self._tasks.append(
            asyncio.create_task(self._dispatch_loop(), name="serve-dispatch")
        )
        if config.autoscale:
            self._autoscale_task = asyncio.create_task(
                self._autoscale_loop(), name="serve-autoscale")
        self._started = True
        self._accepting = True

    async def _build_runner(self) -> BatchRunner:
        """Prepare one replica runner (deepcopy + same seeded context).

        Each worker serves its own replica so concurrent forwards on
        different workers cannot race on shared layer state.  The replica
        recipe is identical for every worker and in both worker modes,
        which is what keeps process serving bit-identical to in-loop
        serving — and what lets one pickled plan payload serve every
        process replica (and the plan cache serve future starts).
        """
        config = self.config
        replica = copy.deepcopy(self.model)
        backend = (
            config.backend if isinstance(config.backend, ExecutionBackend)
            else create_backend(config.backend, **config.backend_options)
        )
        return await asyncio.to_thread(
            BatchRunner, replica, backend, context=config.context
        )

    async def _process_plan_payload(self) -> bytes:
        """The pickled plan shipped to process workers, cached per service.

        Resolution order: in-memory (already built this run) → on-disk
        plan cache (fingerprint hit skips compilation entirely) → compile
        a fresh replica, pickle it and persist it for the next start or
        respawn.
        """
        if self._plan_payload is not None:
            return self._plan_payload
        config = self.config
        # Backend *instances* carry arbitrary caller state the fingerprint
        # cannot see; only registry-name recipes are cacheable.
        cache = self._plan_cache if isinstance(config.backend, str) else None
        key = None
        if cache is not None:
            key = await asyncio.to_thread(
                plan_fingerprint, self.model, config.backend,
                config.backend_options, config.context)
            payload = await asyncio.to_thread(cache.load, key)
            if payload is not None:
                if config.macro_budget is not None:
                    # The budget guard normally runs on the freshly
                    # compiled plan; a hit skipped compilation, so count
                    # macros on an unpickled copy instead.
                    plan = await asyncio.to_thread(pickle.loads, payload)
                    self._enforce_plan_budget(plan)
                self._plan_payload = payload
                return payload
        runner = await self._build_runner()
        try:
            if config.macro_budget is not None:
                await asyncio.to_thread(self._enforce_macro_budget, runner)
            payload = await asyncio.to_thread(pickle.dumps, runner.plan)
        finally:
            await asyncio.to_thread(runner.close)
        if cache is not None and key is not None:
            try:
                await asyncio.to_thread(cache.store, key, payload)
            except OSError as exc:
                warnings.warn(
                    f"plan cache write failed ({exc!r}); serving without it",
                    RuntimeWarning, stacklevel=2)
        self._plan_payload = payload
        return payload

    async def _partition_payloads(self):
        """The per-stage pipeline payloads, built once per service run.

        Every replica is the same seeded recipe, so one partition's pickled
        stage plans serve every pipeline worker — including respawns, which
        therefore never recompile or re-partition.
        """
        if self._pipeline_partition is not None:
            return self._pipeline_partition
        runner = await self._build_runner()
        try:
            partition = await asyncio.to_thread(self._build_partition, runner)
        finally:
            await asyncio.to_thread(runner.close)
        self._pipeline_partition = partition
        return partition

    async def _build_worker(self) -> Union["_ThreadWorker", "_ProcessWorker",
                                           "_PipelineWorker"]:
        """Build and start one worker of the configured substrate."""
        config = self.config
        if config.pipeline_stages > 1:
            partition = await self._partition_payloads()
            worker = _PipelineWorker(partition, max_batch=config.max_batch,
                                     slots=config.transport_slots)
            try:
                await worker.start()
            except Exception:
                await worker.close()
                raise
            return worker
        if config.workers == "process":
            payload = await self._process_plan_payload()
            worker = _ProcessWorker(payload, transport=config.transport,
                                    max_batch=config.max_batch,
                                    slots=config.transport_slots)
            try:
                await worker.start()
            except Exception:
                await worker.close()
                raise
            return worker
        runner = await self._build_runner()
        try:
            if config.macro_budget is not None:
                await asyncio.to_thread(self._enforce_macro_budget, runner)
        except Exception:
            await asyncio.to_thread(runner.close)
            raise
        return _ThreadWorker(runner)

    async def stop(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` serves everything already queued before shutting
        down; ``drain=False`` fails queued requests with
        :class:`ServiceClosedError`.
        """
        if not self._started:
            return
        self._accepting = False
        self._stopping = True
        first_error: Optional[BaseException] = None
        try:
            if self._autoscale_task is not None:
                self._autoscale_task.cancel()
                try:
                    await self._autoscale_task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
                self._autoscale_task = None
            # Let in-flight respawns finish (they check _stopping and tear
            # their worker back down) so no executor leaks past stop.
            if self._respawn_tasks:
                await asyncio.gather(*list(self._respawn_tasks),
                                     return_exceptions=True)
            if not drain:
                self._fail_queued(ServiceClosedError("service stopped"))
            await self._queue.put(CLOSE)
            # Tolerate dead tasks: shutdown must always release the workers
            # and close the runners, even if a serving task crashed.
            outcomes = await asyncio.gather(*self._tasks, return_exceptions=True)
            for outcome in outcomes:
                if isinstance(outcome, BaseException) and first_error is None:
                    first_error = outcome
        finally:
            self._tasks = []
            self._loop_tasks = {}
            for worker in self._workers:
                if worker is not None:
                    await worker.close()
            self._workers = []
            self._started = False
            self._stopping = False
        if first_error is not None:
            # Cleanup succeeded; still surface the crash rather than hide it.
            raise first_error

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_nowait(self, images: np.ndarray,
                      priority: str = DEFAULT_PRIORITY
                      ) -> "asyncio.Future[np.ndarray]":
        """Enqueue one request; returns the future of its logits.

        ``images`` is one sample (``(C, H, W)``) or one stacked multi-sample
        request (``(n, C, H, W)``); the future resolves to logits with the
        matching leading dimension.  ``priority`` names an SLO class from
        ``config.priority_classes`` (or the default class).

        Malformed requests are rejected *here*, synchronously: shape rank,
        sample shape against the service input signature (locked from the
        calibration batch, else from the first admitted request) and
        non-numeric dtypes.  Past admission a request enters the shared
        batching pipeline, where a bad payload would fail every co-batched
        client's request along with its own.
        """
        if not self._started or not self._accepting:
            raise ServiceClosedError("service is not accepting requests")
        classes = self.config.priority_classes
        if (classes is not None and priority != DEFAULT_PRIORITY
                and priority not in classes):
            raise ValueError(
                f"unknown priority class {priority!r}; configured classes: "
                f"{', '.join(sorted(classes))} (or {DEFAULT_PRIORITY!r})"
            )
        array = np.asarray(images, dtype=np.float64)
        if array.ndim == 3:
            array = array[None, ...]
        elif array.ndim != 4:
            raise ValueError(
                f"request must be one (C, H, W) sample or a stacked "
                f"(n, C, H, W) batch; got shape {array.shape}"
            )
        sample_shape = tuple(int(d) for d in array.shape[1:])
        if self._signature is None:
            self._signature = sample_shape
        elif sample_shape != self._signature:
            raise ValueError(
                f"request sample shape {sample_shape} does not match the "
                f"service input signature {self._signature}; rejected at "
                "admission so one malformed request cannot fail its "
                "co-batched clients"
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[np.ndarray]" = loop.create_future()
        now = loop.time()
        capacity = self.config.queue_capacity
        if capacity is not None and self._outstanding >= capacity:
            self.metrics.record_drop()
            future.set_exception(
                ServiceOverloadedError(
                    f"service backlog full ({self._outstanding} outstanding "
                    f"requests, capacity {capacity})"
                )
            )
            return future
        self._outstanding += 1
        request = Request(images=array, future=future, arrival=now,
                          priority=priority)
        if self.tracer.enabled:
            request.trace = self.tracer.maybe_start_request(
                request.request_id, priority, request.rows)
        self._queue.put_nowait(request)
        self.metrics.record_arrival(now, self._queue.qsize())
        return future

    async def submit(self, images: np.ndarray,
                     priority: str = DEFAULT_PRIORITY) -> np.ndarray:
        """Submit one request and await its logits."""
        return await self.submit_nowait(images, priority=priority)

    async def submit_many(self, images: np.ndarray) -> np.ndarray:
        """Submit ``images`` as contiguous ``max_batch``-row slice requests.

        A k-row submission used to create one request (and one future) per
        sample — thousands of queue entries and gather slots that the
        batcher immediately re-coalesced into ``max_batch``-row batches.
        Submitting the same contiguous slices directly enqueues
        ``ceil(k / max_batch)`` stacked requests instead: identical
        execution batches (each slice is exactly one flush) and identical
        FIFO carry semantics, with O(1) futures per executed batch.  Note
        a slice counts as one request toward ``queue_capacity`` and in the
        request-level metrics.
        """
        array = np.asarray(images, dtype=np.float64)
        step = max(self.config.max_batch, 1)
        futures = [self.submit_nowait(array[start:start + step])
                   for start in range(0, array.shape[0], step)]
        results = await asyncio.gather(*futures)
        if not results:
            # Mirror run_model's empty-input behaviour: (0, 0) logits.
            return np.zeros((0, 0), dtype=np.float64)
        return np.concatenate(results, axis=0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build_partition(self, runner: BatchRunner):
        """Cut a prepared replica plan into pipeline stage payloads."""
        # Imported lazily: repro.shard pulls in the pipeline machinery only
        # pipeline-mode services need (and avoids an import cycle through
        # repro.serve.shm).
        from repro.shard.partition import build_stage_payloads

        config = self.config
        probe = (config.pipeline_probe if config.pipeline_probe is not None
                 else config.context.calibration)
        return build_stage_payloads(
            runner.plan, config.pipeline_stages, probe=probe,
            max_macros_per_stage=config.macro_budget)

    def _enforce_macro_budget(self, runner: BatchRunner) -> None:
        """Reject a single-worker replica exceeding the crossbar budget."""
        self._enforce_plan_budget(runner.plan)

    def _enforce_plan_budget(self, plan) -> None:
        from repro.shard.partition import CapacityError, count_plan_macros

        used = count_plan_macros(plan)
        budget = self.config.macro_budget
        if used > budget:
            raise CapacityError(
                f"model maps onto {used} macros but the worker crossbar "
                f"budget is {budget}; shard it with "
                f"ServeConfig(pipeline_stages>= {-(-used // budget)})"
            )

    def _ensure_conversion_estimate(self, batch: List[Request]) -> None:
        if self._conversions_per_sample is not None:
            return
        if not self.config.estimate_energy:
            self._conversions_per_sample = 0
            return
        # Probe on the caller's model: replicas may be mid-forward in worker
        # threads, but the original stays digital and idle while serving.
        self._conversions_per_sample = estimate_conversions_per_sample(
            self.model, batch[0].images[0],
            macro_config=self.config.context.macro_config,
            max_mapped_layers=self.config.context.max_mapped_layers,
        )

    def _fail_queued(self, error: BaseException) -> None:
        """Fail every request still sitting in the request queue."""
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if item is not CLOSE:
                fail_requests([item], error)
                self._finish_request_traces([item], error=error)
                self._outstanding -= 1

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _trace_batch_formed(self, batch: List[Request]) -> None:
        """Close queue-wait spans; open the primary trace's batch span.

        The first traced request of a batch is its *primary*: batch- and
        dispatch-level spans attach to that one trace (a batch is one
        execution, not one per client), and every other traced request in
        the batch records the primary's trace id for cross-reference.
        """
        if not self.tracer.enabled:
            return
        traced = [request for request in batch if request.trace is not None]
        if not traced:
            return
        now = self.tracer.clock()
        for request in traced:
            self.tracer.end(request.trace.queue_span, now)
        primary = traced[0].trace
        primary.batch_span = self.tracer.begin(
            "batch", category="batch", trace_id=primary.trace_id,
            parent=primary.root, start_s=now,
            rows=sum(request.rows for request in batch),
            requests=len(batch))
        for other in traced[1:]:
            other.trace.root.args["batched_into"] = primary.trace_id

    def _batch_primary_trace(self, batch: List[Request]
                             ) -> Optional[RequestTrace]:
        """The batch's primary trace handle (first traced request), if any."""
        if not self.tracer.enabled:
            return None
        for request in batch:
            if request.trace is not None:
                return request.trace
        return None

    def _finish_request_traces(self, batch: List[Request],
                               error: Optional[BaseException] = None) -> None:
        """End every span of the batch's traced requests (success or failure).

        Idempotent per span, so a request finished here after its batch
        span closed normally only picks up whatever is still open — which
        is what keeps failure paths (admission races, retries exhausted,
        drain) from leaking unclosed spans as orphans.
        """
        if not self.tracer.enabled:
            return
        now = self.tracer.clock()
        outcome = {} if error is None else {"error": repr(error)}
        for request in batch:
            trace = request.trace
            if trace is None:
                continue
            self.tracer.end(trace.queue_span, now)
            self.tracer.end(trace.batch_span, now, **outcome)
            self.tracer.end(trace.root, now, **outcome)

    async def _dispatch_loop(self) -> None:
        try:
            while True:
                try:
                    batch = await self._batcher.next_batch()
                except Exception as exc:  # noqa: BLE001 — defense in depth
                    # A batcher failure must not wedge the service with
                    # accepted-but-undispatchable requests.
                    self._fail_queued(exc)
                    break
                if batch is None:
                    break
                self._trace_batch_formed(batch)
                if self._conversions_per_sample is None:
                    try:
                        # Off the event loop: the probe runs a real forward,
                        # and arrivals must keep flowing while it does.
                        await asyncio.to_thread(self._ensure_conversion_estimate,
                                                batch)
                    except Exception:
                        # Energy estimation is best-effort; never fail
                        # traffic over it.
                        self._conversions_per_sample = 0
                try:
                    rows = sum(request.rows for request in batch)
                    estimate = rows * self._conversions_per_sample
                    worker = await self._place_batch(rows)
                    worker.accelerator.begin_inference(estimate)
                    self.metrics.record_dispatch(self._queue.qsize())
                    await self._worker_queues[worker.index].put(
                        (batch, estimate, 0))
                except Exception as exc:  # noqa: BLE001 — fail, don't hang
                    fail_requests(batch, exc)
                    self._finish_request_traces(batch, error=exc)
                    self._outstanding -= len(batch)
        finally:
            # Always broadcast shutdown, even if dispatch died: workers must
            # never be left blocking on their queues.
            for queue in self._worker_queues:
                queue.put_nowait(None)

    async def _worker_loop(self, index: int) -> None:
        """Pump one worker's queue.

        Ordinary workers serve one batch at a time.  A worker advertising
        ``max_inflight > 1`` (the pipeline workers) is pumped with that many
        concurrent batch tasks — stages overlap across batches, which is
        the pipeline's throughput win; the worker itself serialises
        pipeline *entry* so batch order (and with it analog bit identity)
        is preserved.
        """
        queue = self._worker_queues[index]
        state = self._worker_states[index]
        limit = max(int(getattr(self._workers[index], "max_inflight", 1)), 1)
        semaphore = asyncio.Semaphore(limit)
        pending: set = set()
        while True:
            item = await queue.get()
            if item is None:
                break
            # Fetched per item: a respawn replaces the worker object at
            # this index, and batches queued before (or during) the death
            # must run on whatever currently backs the slot.
            worker = self._workers[index]
            await semaphore.acquire()
            if limit == 1:
                try:
                    await self._serve_batch(worker, state, item)
                finally:
                    semaphore.release()
            else:
                task = asyncio.create_task(
                    self._serve_batch_release(worker, state, item, semaphore))
                pending.add(task)
                task.add_done_callback(pending.discard)
        if pending:
            await asyncio.gather(*pending)

    async def _serve_batch_release(self, worker, state, item,
                                   semaphore: asyncio.Semaphore) -> None:
        try:
            await self._serve_batch(worker, state, item)
        finally:
            semaphore.release()

    async def _serve_batch(self, worker, state, item) -> None:
        loop = asyncio.get_running_loop()
        batch, estimate, retries = item
        if not state.alive and not state.retired and not self._stopping:
            # Queued before the worker's death was noticed: skip the doomed
            # forward (the executor is closed or closing) and go straight
            # to the retry path.  Retired workers still drain their queue.
            state.accelerator.cancel_inference(estimate)
            await self._retry_or_fail(
                batch, retries,
                RuntimeError(f"worker {state.index} died before serving "
                             "the batch"))
            return
        primary = self._batch_primary_trace(batch)
        dispatch_span = None
        try:
            inputs = stack_requests(batch)
            if primary is not None:
                dispatch_span = self.tracer.begin(
                    "dispatch", category="dispatch",
                    trace_id=primary.trace_id,
                    parent=primary.batch_span or primary.root,
                    worker=state.index, mode=state.mode, attempt=retries)
            logits, measured, remote = await worker.forward(
                inputs, traced=dispatch_span is not None)
            now = loop.time()
            if dispatch_span is not None:
                dispatch_end = self.tracer.clock()
                self.tracer.end(dispatch_span, dispatch_end)
                if remote:
                    # Re-anchor the worker-clock spans inside the observed
                    # dispatch window — the tree stays connected without a
                    # shared clock epoch.
                    self.tracer.attach_remote(
                        remote, parent=dispatch_span,
                        start_s=dispatch_span.start_s, end_s=dispatch_end)
            # Scatter first: it validates the worker returned one logits
            # row per batched sample row before any future resolves.
            scatter_results(batch, logits)
            # Retire the booked estimate from the in-flight gauge but
            # credit the measured cost, so neither an optimistic nor a
            # pessimistic estimate leaves phantom load behind.
            state.accelerator.complete_inference(
                measured if measured else estimate, booked=estimate)
            state.transport_s = getattr(worker, "transport_s", 0.0)
            state.stage_stats = getattr(worker, "stage_stats", None) or []
            self._outstanding -= len(batch)
            self.metrics.record_batch(
                rows=int(inputs.shape[0]),
                request_latencies_s=[now - request.arrival
                                     for request in batch],
                now=now,
                conversions=measured,
                estimated_conversions=0.0 if measured else float(estimate),
                request_classes=[request.priority for request in batch],
            )
            self._finish_request_traces(batch)
        except Exception as exc:  # noqa: BLE001 — classify, retry or fail
            if dispatch_span is not None:
                self.tracer.end(dispatch_span, error=repr(exc))
            state.accelerator.cancel_inference(estimate)
            # A fault is worker-level either by type (BrokenExecutor,
            # StageDiedError) or by correlation: the worker was marked
            # dead while this batch raced its teardown, so errors like
            # "cannot schedule new futures after shutdown" still count.
            death = (self._is_worker_death(exc)
                     or (not state.alive and not state.retired))
            if death and not self._stopping:
                # Worker-level fault (process exit, broken shm transport,
                # dead pipeline stage): the batch itself is fine, so it is
                # re-dispatchable.  Mark the worker down and respawn it.
                self._note_worker_death(state, exc)
                await self._retry_or_fail(batch, retries, exc)
                return
            # Request-level failure (stacking errors, forward exceptions,
            # scatter row mismatch): it would fail the same way on any
            # replica, so it propagates to exactly this batch's clients.
            # The worker itself survives any single bad batch.
            fail_requests(batch, exc)
            self._finish_request_traces(batch, error=exc)
            self._outstanding -= len(batch)

    async def _retry_or_fail(self, batch: List[Request], retries: int,
                             exc: BaseException) -> None:
        """Re-dispatch a dead worker's batch, or fail it to its clients.

        Retries are bounded by ``max_retries`` and disabled entirely under
        ``retry_policy="fail_fast"`` (the pre-fault-tolerance behaviour,
        for noise-stream-sensitive runs).
        """
        if (self.config.retry_policy == "redispatch"
                and retries < self.config.max_retries
                and not self._stopping):
            try:
                await self._redispatch(batch, retries + 1)
                return
            except Exception as redispatch_exc:  # noqa: BLE001
                exc = redispatch_exc
        fail_requests(batch, exc)
        self._finish_request_traces(batch, error=exc)
        self._outstanding -= len(batch)

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def _is_worker_death(self, exc: BaseException) -> bool:
        """Whether ``exc`` means the *worker* died rather than the batch."""
        if isinstance(exc, concurrent.futures.BrokenExecutor):
            return True  # process worker gone (BrokenProcessPool et al.)
        try:
            from repro.shard.pipeline import StageDiedError
        except ImportError:  # pragma: no cover - shard always ships
            return False
        return isinstance(exc, StageDiedError)

    def _note_worker_death(self, state: WorkerState,
                           exc: BaseException) -> None:
        """Mark a worker dead once and kick off its background recovery."""
        if not state.alive or state.retired or self._stopping:
            return
        state.alive = False
        self.metrics.record_worker_death()
        self.tracer.event("worker_death", worker=state.index,
                          mode=state.mode, error=repr(exc))
        if self._degraded_since is None:
            self._degraded_since = asyncio.get_running_loop().time()
        dead = self._workers[state.index]
        task = asyncio.create_task(
            self._recover_worker(state.index, dead),
            name=f"serve-respawn-{state.index}")
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    async def _recover_worker(self, index: int, dead_worker) -> None:
        """Release a dead worker's resources and (optionally) respawn it.

        Closing the dead worker first unlinks its shared-memory segments
        even mid-crash (the parent owns them).  The replacement is built
        from the cached plan payload — the on-disk cache when configured,
        the in-memory copy otherwise — so respawn never recompiles.
        """
        try:
            await dead_worker.close()
        except Exception:  # noqa: BLE001 — it is already dead
            pass
        if not self.config.respawn or self._stopping:
            return
        try:
            worker = await self._build_worker()
        except Exception as exc:  # noqa: BLE001 — capacity stays degraded
            warnings.warn(
                f"worker {index} respawn failed ({exc!r}); "
                "pool capacity stays degraded",
                RuntimeWarning, stacklevel=2)
            return
        if self._stopping:
            await worker.close()
            return
        self._workers[index] = worker
        self._worker_states[index].alive = True
        self.metrics.record_respawn()
        self.tracer.event("worker_respawn", worker=index)
        if self._degraded_since is not None and self.pool_recovered():
            loop = asyncio.get_running_loop()
            self.metrics.record_recovery(loop.time() - self._degraded_since)
            self._degraded_since = None

    async def _place_batch(self, rows: int) -> WorkerState:
        """Select a worker, waiting out a total loss of capacity.

        When every worker is dead but a respawn is pending, placement
        waits (bounded by ``recovery_wait_s``) instead of failing the
        batch — the kill-storm contract is zero client-visible failures
        as long as the pool can recover.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.recovery_wait_s
        while True:
            try:
                return self._scheduler.select(rows)
            except NoAliveWorkersError:
                if (self._stopping or not self._respawn_tasks
                        or loop.time() >= deadline):
                    raise
                await asyncio.sleep(0.005)

    async def _redispatch(self, batch: List[Request], retries: int) -> None:
        """Re-queue a dead worker's batch onto a surviving replica.

        The retried batch re-enters placement exactly like a fresh one
        (occupancy booked on the new worker); on analog backends it will
        draw fresh noise there — see the module docstring and
        ``retry_policy``.
        """
        rows = sum(request.rows for request in batch)
        estimate = rows * (self._conversions_per_sample or 0)
        worker = await self._place_batch(rows)
        worker.accelerator.begin_inference(estimate)
        self.metrics.record_retry()
        primary = self._batch_primary_trace(batch)
        self.tracer.event(
            "retry", trace_id=primary.trace_id if primary else None,
            worker=worker.index, attempt=retries, rows=rows)
        await self._worker_queues[worker.index].put((batch, estimate, retries))

    # ------------------------------------------------------------------
    # Autoscaling
    # ------------------------------------------------------------------
    async def _autoscale_loop(self) -> None:
        """Spawn/retire replicas from queue depth and pool occupancy.

        Scale up when the outstanding backlog exceeds one full batch per
        alive worker (the pool cannot absorb the queue in a single round);
        scale down after ``scale_down_idle_ticks`` consecutive idle
        samples.  The pool stays within ``[min_workers, max_workers]``.
        """
        config = self.config
        interval = max(config.autoscale_interval_ms, 1.0) / 1e3
        high = (config.max_workers if config.max_workers is not None
                else config.num_workers)
        low = (config.min_workers if config.min_workers is not None
               else config.num_workers)
        idle_ticks = 0
        while not self._stopping:
            await asyncio.sleep(interval)
            if self._stopping or not self._started:
                return
            alive = [s for s in self._worker_states if s.alive]
            if not alive:
                continue  # recovery, not autoscaling, owns a dead pool
            backlog = self._outstanding
            if (len(alive) < high
                    and backlog > len(alive) * config.max_batch):
                idle_ticks = 0
                await self._scale_up()
                continue
            if backlog == 0:
                idle_ticks += 1
                if idle_ticks >= config.scale_down_idle_ticks and len(alive) > low:
                    idle_ticks = 0
                    self._scale_down()
            else:
                idle_ticks = 0

    async def _scale_up(self) -> None:
        """Append one replica to the pool (same recipe, plan-cache fast)."""
        config = self.config
        index = len(self._worker_states)
        state = build_worker_states(
            1, macro_config=config.context.macro_config,
            macros_per_worker=config.macros_per_worker,
            mode=self._worker_mode)[0]
        state.index = index
        state.alive = False  # not placeable until the worker is ready
        self._worker_states.append(state)
        self._worker_queues.append(asyncio.Queue())
        self._workers.append(None)
        try:
            worker = await self._build_worker()
        except Exception as exc:  # noqa: BLE001 — scaling is best-effort
            warnings.warn(f"autoscale spawn failed ({exc!r})",
                          RuntimeWarning, stacklevel=2)
            state.retired = True
            return
        if self._stopping:
            await worker.close()
            state.retired = True
            return
        self._workers[index] = worker
        loop_task = asyncio.create_task(self._worker_loop(index),
                                        name=f"serve-worker-{index}")
        self._loop_tasks[index] = loop_task
        self._tasks.append(loop_task)
        state.alive = True
        self.metrics.record_scale_event("up")

    def _scale_down(self) -> None:
        """Retire the newest spare replica once its queue drains."""
        candidates = [s for s in self._worker_states
                      if s.alive and not s.retired]
        state = candidates[-1]
        state.alive = False
        state.retired = True
        # The sentinel ends the worker loop after already-queued batches.
        self._worker_queues[state.index].put_nowait(None)
        worker = self._workers[state.index]
        loop_task = self._loop_tasks.get(state.index)
        self.metrics.record_scale_event("down")

        async def _close_after_drain() -> None:
            if loop_task is not None:
                await asyncio.shield(loop_task)
            if worker is not None:
                try:
                    await worker.close()
                except Exception:  # noqa: BLE001 — already torn down
                    pass

        task = asyncio.create_task(_close_after_drain(),
                                   name=f"serve-retire-{state.index}")
        self._respawn_tasks.add(task)
        task.add_done_callback(self._respawn_tasks.discard)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def worker_snapshots(self) -> List[WorkerSnapshot]:
        """Per-worker load and occupancy summaries."""
        return [
            WorkerSnapshot(
                index=state.index,
                batches=state.assigned_batches,
                rows=state.assigned_rows,
                conversions=state.accelerator.completed_conversions,
                busy_seconds=state.accelerator.busy_seconds,
                mode=state.mode,
                transport_s=state.transport_s,
                alive=state.alive,
                retired=state.retired,
                stages=tuple(
                    StageOccupancy(
                        index=int(stage.get("stage", 0)),
                        layer_start=int(stage.get("layers", (0, 0))[0]),
                        layer_stop=int(stage.get("layers", (0, 0))[1]),
                        batches=int(stage.get("batches", 0)),
                        busy_s=float(stage.get("forward_s", 0.0)),
                        bubble_s=float(stage.get("bubble_s", 0.0)),
                        transport_s=float(stage.get("transport_s", 0.0)),
                        conversions=int(stage.get("conversions", 0)),
                    )
                    for stage in state.stage_stats
                ),
            )
            for state in self._worker_states
        ]

    def shm_segment_names(self) -> List[str]:
        """Shared-memory segments currently owned by the process workers.

        Used by the leak tests: every listed name must be gone from the
        system after :meth:`stop` / the workers' ``close``.
        """
        names: List[str] = []
        for worker in self._workers:
            if worker is not None:
                names.extend(getattr(worker, "shm_segment_names", []))
        return names

    def process_worker_pids(self) -> Dict[int, List[int]]:
        """PIDs of the live worker processes, keyed by worker index.

        Process workers report their single executor process; pipeline
        workers report every live stage process.  Thread workers (and dead
        or retired workers) are absent.  This is what the kill-storm
        loadgen scenario and the chaos tests aim their SIGKILLs at.
        """
        pids: Dict[int, List[int]] = {}
        for state in self._worker_states:
            if not state.alive:
                continue
            worker = self._workers[state.index]
            if isinstance(worker, _ProcessWorker):
                procs = list(getattr(worker.executor, "_processes", None) or {})
                if procs:
                    pids[state.index] = [int(pid) for pid in procs]
            elif isinstance(worker, _PipelineWorker):
                procs = [int(proc.pid) for proc in worker.pipeline._procs
                         if proc.is_alive()]
                if procs:
                    pids[state.index] = procs
        return pids

    def alive_worker_count(self) -> int:
        """Workers currently accepting placements."""
        return sum(1 for state in self._worker_states if state.alive)

    def transport_counters(self) -> Dict[str, int]:
        """Summed shm-ring writes/bytes across the live process workers.

        Empty-ringed workers (thread mode, pickle transport, pre-first-
        batch) contribute zeros; the exposition reports the totals as
        ``shm_*`` gauges.
        """
        totals = {"request_writes": 0, "request_bytes": 0,
                  "response_writes": 0, "response_bytes": 0}
        for worker in self._workers:
            channel = getattr(worker, "_channel", None)
            if channel is None:
                continue
            for key, value in channel.transport_counters().items():
                totals[key] += int(value)
        return totals

    def pool_recovered(self) -> bool:
        """Whether every non-retired worker slot is alive again."""
        return self._started and all(
            state.alive or state.retired for state in self._worker_states
        )

    async def stage_profiles(self) -> List[Dict[str, float]]:
        """Per-worker plan-stage (DAC/crossbar/ADC/digital) breakdowns.

        Collect before :meth:`stop` — thread workers read their runner's
        plan directly, process workers fetch the breakdown from the worker
        interpreter.
        """
        return [await worker.stage_profile() for worker in self._workers
                if worker is not None]

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Freeze the service metrics (latency, batching, energy, workers)."""
        if self._plan_cache is not None:
            self.metrics.plan_cache_hits = self._plan_cache.hits
            self.metrics.plan_cache_misses = self._plan_cache.misses
        return self.metrics.snapshot(self.worker_snapshots())


def serve_requests(model: Model, images: np.ndarray,
                   config: Optional[ServeConfig] = None
                   ) -> Tuple[np.ndarray, MetricsSnapshot]:
    """Serve every sample of ``images`` as its own request, synchronously.

    Convenience wrapper for tests and benchmarks: starts a service, submits
    all samples up front (so the batcher sees the full queue), awaits every
    response, drains and returns ``(logits, metrics_snapshot)`` with logits
    in submission order.
    """

    async def _run() -> Tuple[np.ndarray, MetricsSnapshot]:
        service = InferenceService(model, config)
        await service.start()
        try:
            logits = await service.submit_many(images)
            snapshot = service.metrics_snapshot()
        finally:
            await service.stop()
        return logits, snapshot

    return asyncio.run(_run())
