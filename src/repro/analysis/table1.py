"""Table I: CIM macro comparison.

The table compares the AFPR-CIM macro (E2M5 and E3M4 variants) with five
published designs on architecture, technology, precision, latency,
throughput and energy efficiency, and the paper's abstract condenses it into
four headline ratios: 4.135x / 5.376x / 2.841x energy-efficiency improvement
over the FP8 accelerator, the digital FP-CIM and the analog INT8 CIM
respectively, plus a 5.382x throughput improvement over the analog INT8 CIM.

The runner rebuilds the AFPR-CIM rows from the reproduction's power model,
keeps the published rows verbatim, recomputes the four ratios from the
reproduced numbers, and additionally reports the ratios against the
*modelled* baselines (own analytical models of the three baseline classes).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.analysis.report import format_quantity, render_table
from repro.baselines.digital_fp_cim import DigitalFPCIM
from repro.baselines.fp8_accelerator import FP8Accelerator
from repro.baselines.int8_cim import AnalogInt8CIM
from repro.baselines.published import (
    PAPER_AFPR_RESULTS,
    PUBLISHED_MACROS,
    paper_claimed_ratios,
    recomputed_ratios,
)
from repro.core.config import e2m5_macro_config, e3m4_macro_config
from repro.power.efficiency import MacroSpecification, afpr_specification


@dataclasses.dataclass
class Table1Result:
    """Outcome of the Table I reproduction."""

    afpr_rows: List[MacroSpecification]
    published_rows: List[MacroSpecification]
    modelled_baseline_rows: List[MacroSpecification]
    measured_ratios: Dict[str, float]
    claimed_ratios: Dict[str, float]
    modelled_ratios: Dict[str, float]
    #: Simulated samples/s per execution backend (only measured on request).
    backend_throughput: Optional[Dict[str, float]] = None

    @property
    def e2m5(self) -> MacroSpecification:
        """The reproduced AFPR-CIM E2M5 row."""
        return self.afpr_rows[0]

    def render(self) -> str:
        """ASCII rendering of the full comparison table plus the ratios."""
        def row(spec: MacroSpecification):
            return (
                spec.name,
                spec.architecture,
                spec.activation_precision,
                format_quantity(spec.latency_us, "us"),
                f"{spec.throughput_gops:.1f}",
                f"{spec.energy_efficiency_tops_per_watt:.2f}",
            )

        all_rows = [row(s) for s in self.afpr_rows]
        all_rows += [row(s) for s in self.published_rows]
        all_rows += [row(s) for s in self.modelled_baseline_rows]
        table = render_table(
            ["design", "architecture", "precision", "latency", "GOPS", "TOPS/W"],
            all_rows,
            title="Table I: CIM macro comparison (reproduced AFPR rows + references)",
        )
        ratio_rows = []
        for key, claimed in self.claimed_ratios.items():
            ratio_rows.append((
                key,
                f"{claimed:.3f}x",
                f"{self.measured_ratios[key]:.3f}x",
                f"{self.modelled_ratios[key]:.3f}x",
            ))
        ratios = render_table(
            ["ratio", "paper", "reproduced vs published", "reproduced vs modelled"],
            ratio_rows,
            title="Headline comparison factors",
        )
        report = table + "\n\n" + ratios
        if self.backend_throughput:
            backend_rows = [
                (name, f"{throughput:.1f}")
                for name, throughput in sorted(self.backend_throughput.items())
            ]
            report += "\n\n" + render_table(
                ["execution backend", "samples/s"],
                backend_rows,
                title="Simulator throughput per execution backend (small CNN)",
            )
        return report


def measure_backend_throughput(samples: int = 64, batch_size: int = 64,
                               max_mapped_layers: int = 2,
                               seed: int = 0) -> Dict[str, float]:
    """Simulated samples/s of every registered execution backend.

    Runs a small untrained CNN over a synthetic batch through each backend
    of :mod:`repro.exec` — the simulator-side complement of the hardware
    throughput column (how fast each fidelity level *evaluates*, not how
    fast the silicon would be).
    """
    from repro.exec import available_backends, compare_backends
    from repro.nn.data import DatasetConfig, SyntheticImageDataset
    from repro.nn.resnet import build_resnet_lite

    dataset = SyntheticImageDataset(
        DatasetConfig(num_classes=8, image_size=16, seed=seed)
    )
    images, labels = dataset.generate(samples)
    model = build_resnet_lite(num_classes=8, stage_widths=(8, 16),
                              blocks_per_stage=1, seed=seed)
    reports = compare_backends(
        model, images, labels,
        backends=available_backends(),
        calibration=images[: min(16, samples)],
        max_mapped_layers=max_mapped_layers,
        batch_size=batch_size,
        seed=seed,
    )
    return {name: report.samples_per_second for name, report in reports.items()}


def run_table1(sparsity: float = 0.0,
               include_backend_throughput: bool = False) -> Table1Result:
    """Rebuild Table I from the power model and the baseline records."""
    e2m5 = afpr_specification(e2m5_macro_config(), sparsity=sparsity)
    e3m4 = afpr_specification(e3m4_macro_config(), sparsity=sparsity)

    analog_int8 = AnalogInt8CIM().specification()
    digital_fp_cim = DigitalFPCIM().specification()
    fp8_accelerator = FP8Accelerator().specification()

    measured = recomputed_ratios(e2m5)
    modelled = {
        "energy_efficiency_vs_fp8_accelerator": e2m5.efficiency_ratio_to(fp8_accelerator),
        "energy_efficiency_vs_digital_fp_cim": e2m5.efficiency_ratio_to(digital_fp_cim),
        "energy_efficiency_vs_analog_int8_cim": e2m5.efficiency_ratio_to(analog_int8),
        "throughput_vs_analog_int8_cim": e2m5.throughput_ratio_to(analog_int8),
    }
    return Table1Result(
        afpr_rows=[e2m5, e3m4],
        published_rows=list(PAPER_AFPR_RESULTS.values()) + list(PUBLISHED_MACROS.values()),
        modelled_baseline_rows=[analog_int8, digital_fp_cim, fp8_accelerator],
        measured_ratios=measured,
        claimed_ratios=paper_claimed_ratios(),
        modelled_ratios=modelled,
        backend_throughput=(
            measure_backend_throughput() if include_backend_throughput else None
        ),
    )
