"""Fig. 6(c): PTQ Top-1 accuracy of INT8 / FP8 E3M4 / FP8 E2M5.

The paper quantises ResNet and MobileNet post-training to the three formats,
injects the circuit non-linearities extracted from the macro model, and
reports Top-1 accuracy relative to FP32 on ImageNet.  The reproduction runs
the same flow on the synthetic-dataset-trained ResNet-lite and
MobileNet-lite (see DESIGN.md for the substitution rationale) and reports
the accuracy deltas; the paper's qualitative claims are

* E2M5 loses less accuracy than INT8 (non-uniform quantisation suits the
  roughly Gaussian activations), and
* E2M5 loses less accuracy than E3M4 (the extra mantissa bit matters more
  than the extra exponent bit for well-behaved networks).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.analysis.report import render_table
from repro.core.config import MacroConfig
from repro.exec import run_ptq_sweep
from repro.nn.data import DatasetConfig, SyntheticImageDataset
from repro.nn.mobilenet import build_mobilenet_lite
from repro.nn.optim import SGD
from repro.nn.quantize import CIMNonidealities, PTQResult, extract_cim_nonidealities
from repro.nn.resnet import build_resnet_lite
from repro.nn.training import Trainer


@dataclasses.dataclass(frozen=True)
class Fig6cConfig:
    """Workload configuration of the accuracy study.

    The defaults are sized so the whole study (training two networks plus
    three PTQ evaluations each) runs in tens of seconds on a laptop while
    still being hard enough that quantisation causes measurable accuracy
    loss.
    """

    num_classes: int = 10
    image_size: int = 16
    train_samples: int = 1200
    test_samples: int = 800
    calibration_samples: int = 128
    epochs: int = 6
    batch_size: int = 32
    learning_rate: float = 0.05
    dataset_noise: float = 0.35
    use_macro_nonidealities: bool = True
    write_verified_devices: bool = True
    mac_noise_override: Optional[float] = None
    seed: int = 0


@dataclasses.dataclass
class Fig6cResult:
    """Accuracy of each network under each quantisation format."""

    fp32_accuracy: Dict[str, float]
    results: Dict[str, Dict[str, PTQResult]]
    nonidealities: CIMNonidealities

    def accuracy_delta(self, network: str, format_name: str) -> float:
        """Accuracy change (quantised minus FP32) for a network/format pair."""
        return self.results[network][format_name].accuracy_delta

    def ordering_holds(self, network: str) -> bool:
        """Whether E2M5 is at least as accurate as both INT8 and E3M4."""
        formats = self.results[network]
        e2m5 = formats["FP8-E2M5"].accuracy
        return e2m5 >= formats["INT8"].accuracy - 1e-9 and e2m5 >= formats["FP8-E3M4"].accuracy - 1e-9

    def render(self) -> str:
        """ASCII rendering of the Fig. 6(c) comparison."""
        rows = []
        for network, formats in self.results.items():
            for format_name, result in formats.items():
                rows.append((
                    network,
                    format_name,
                    f"{result.accuracy:.3f}",
                    f"{result.accuracy_delta:+.3f}",
                ))
        table = render_table(
            ["network", "format", "top-1 accuracy", "delta vs FP32"],
            rows,
            title="Fig. 6(c) PTQ accuracy (synthetic-dataset substitution)",
        )
        note = (
            f"\ninjected CIM MAC noise sigma: {self.nonidealities.mac_noise_sigma:.4f}"
            f", weight programming sigma: {self.nonidealities.weight_noise_sigma:.4f}"
        )
        return table + note


def _train_network(builder, dataset_config: DatasetConfig, config: Fig6cConfig, seed: int):
    """Train one reference network and return (model, data splits)."""
    dataset = SyntheticImageDataset(dataset_config)
    x_train, y_train, x_test, y_test = dataset.train_test_split(
        config.train_samples, config.test_samples
    )
    model = builder(num_classes=config.num_classes, seed=seed)
    trainer = Trainer(
        model,
        SGD(model.parameters(), learning_rate=config.learning_rate),
        batch_size=config.batch_size,
        seed=seed,
    )
    trainer.fit(x_train, y_train, epochs=config.epochs)
    calibration = x_train[: config.calibration_samples]
    return model, calibration, x_test, y_test


def run_fig6c(config: Fig6cConfig = Fig6cConfig(),
              macro_config: MacroConfig = MacroConfig()) -> Fig6cResult:
    """Train the two reference networks and evaluate the three PTQ formats."""
    if config.mac_noise_override is not None:
        nonidealities = CIMNonidealities(
            mac_noise_sigma=config.mac_noise_override,
            weight_noise_sigma=macro_config.device_statistics.programming_sigma,
            seed=config.seed,
        )
    elif config.use_macro_nonidealities:
        if config.write_verified_devices:
            # Production arrays are programmed with write-verify (see
            # repro.rram.programming.write_verify), which tightens the
            # conductance error to about 1 %; extract the lumped MAC noise
            # from a macro with that device quality.
            verified_stats = dataclasses.replace(
                macro_config.device_statistics, programming_sigma=0.01
            )
            macro_config = dataclasses.replace(
                macro_config, device_statistics=verified_stats
            )
        nonidealities = extract_cim_nonidealities(macro_config, seed=config.seed)
    else:
        nonidealities = CIMNonidealities()

    dataset_config = DatasetConfig(
        num_classes=config.num_classes,
        image_size=config.image_size,
        noise_sigma=config.dataset_noise,
        seed=config.seed,
    )

    networks = {
        "ResNet-lite": build_resnet_lite,
        "MobileNet-lite": build_mobilenet_lite,
    }
    fp32_accuracy: Dict[str, float] = {}
    results: Dict[str, Dict[str, PTQResult]] = {}
    for index, (name, builder) in enumerate(networks.items()):
        model, calibration, x_test, y_test = _train_network(
            builder, dataset_config, config, seed=config.seed + index
        )
        # Route the accuracy study through the execution-backend registry:
        # the FP32 baseline runs on the `ideal` backend and each quantised
        # format on `fast_noise` (numerically identical to the legacy
        # repro.nn.quantize flow).
        sweep = run_ptq_sweep(
            model, calibration, x_test, y_test,
            nonidealities=nonidealities, seed=config.seed,
        )
        results[name] = sweep
        fp32_accuracy[name] = next(iter(sweep.values())).fp32_accuracy

    return Fig6cResult(fp32_accuracy=fp32_accuracy, results=results,
                       nonidealities=nonidealities)


def quick_fig6c(seed: int = 0) -> Fig6cResult:
    """A scaled-down Fig. 6(c) run for tests and smoke checks."""
    config = Fig6cConfig(
        num_classes=6,
        train_samples=360,
        test_samples=200,
        calibration_samples=64,
        epochs=2,
        use_macro_nonidealities=False,
        mac_noise_override=0.02,
        seed=seed,
    )
    return run_fig6c(config)
