"""``repro.serve`` — the dynamic-batching inference service layer.

This package turns the execution engine (:mod:`repro.exec`) into a serving
system::

    requests -> queue -> DynamicBatcher -> Scheduler -> worker BatchRunner
                                                        (exec backend)

* :mod:`repro.serve.batcher` — request objects and the dynamic micro-batcher
  (flush on ``max_batch`` rows or ``max_wait_ms``, whichever first),
* :mod:`repro.serve.scheduler` — placement policies (``round_robin``,
  ``least_loaded``) over occupancy-tracked
  :class:`~repro.core.accelerator.AFPRAccelerator` worker pools,
* :mod:`repro.serve.service` — the asyncio :class:`InferenceService`
  (worker substrates: in-loop threads, shipped-plan processes, or a
  ``pipeline_stages=N`` sharded stage pipeline via :mod:`repro.shard`),
* :mod:`repro.serve.metrics` — latency percentiles, queue depth, batch-size
  histogram, throughput and energy-per-request,
* :mod:`repro.serve.loadgen` — seeded open-loop Poisson / bursty / uniform
  load generation,
* :mod:`repro.serve.energy` — conversion-count estimation behind the
  energy-per-request figure for digital backends,
* :mod:`repro.serve.cli` — the ``python -m repro serve`` / ``loadtest``
  subcommands.

Quickstart::

    from repro.serve import ServeConfig, serve_requests

    logits, metrics = serve_requests(model, images,
                                     ServeConfig(backend="ideal", max_batch=64))
    print(metrics.render())
"""

from repro.serve.batcher import DEFAULT_PRIORITY, DynamicBatcher, Request
from repro.serve.energy import estimate_conversions_per_sample
from repro.serve.loadgen import (
    ARRIVAL_PROCESSES,
    LOAD_SCENARIOS,
    LoadResult,
    assign_priorities,
    bursty_arrivals,
    make_arrivals,
    poisson_arrivals,
    run_loadtest,
    run_open_loop,
    uniform_arrivals,
)
from repro.serve.metrics import (
    MetricsSnapshot,
    ServiceMetrics,
    StageOccupancy,
    WorkerSnapshot,
)
from repro.serve.scheduler import (
    LeastLoadedScheduler,
    NoAliveWorkersError,
    RoundRobinScheduler,
    SCHEDULING_POLICIES,
    Scheduler,
    WorkerState,
    available_policies,
    create_scheduler,
    register_policy,
)
from repro.serve.service import (
    InferenceService,
    ServeConfig,
    ServiceClosedError,
    ServiceDegradedError,
    ServiceOverloadedError,
    serve_requests,
)

__all__ = [
    "DEFAULT_PRIORITY",
    "DynamicBatcher",
    "Request",
    "estimate_conversions_per_sample",
    "ARRIVAL_PROCESSES",
    "LOAD_SCENARIOS",
    "LoadResult",
    "assign_priorities",
    "bursty_arrivals",
    "make_arrivals",
    "poisson_arrivals",
    "run_loadtest",
    "run_open_loop",
    "uniform_arrivals",
    "MetricsSnapshot",
    "ServiceMetrics",
    "StageOccupancy",
    "WorkerSnapshot",
    "LeastLoadedScheduler",
    "NoAliveWorkersError",
    "RoundRobinScheduler",
    "SCHEDULING_POLICIES",
    "Scheduler",
    "WorkerState",
    "available_policies",
    "create_scheduler",
    "register_policy",
    "InferenceService",
    "ServeConfig",
    "ServiceClosedError",
    "ServiceDegradedError",
    "ServiceOverloadedError",
    "serve_requests",
]
