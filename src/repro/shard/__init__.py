"""``repro.shard`` — pipeline-parallel sharded execution of compiled plans.

PRs 1-4 made a single worker fast (compiled plans, code-domain kernels,
shared-memory process serving); this package scales *out*: a compiled
:class:`~repro.exec.plan.ModelPlan` is cut at layer boundaries into
per-stage partial plans, each stage runs in its own process worker, and
micro-batches stream between stages over per-edge shared-memory slot
rings::

    model -> ModelPlan -> partition (greedy cost balance + macro budget)
          -> [stage 0 plan | stage 1 plan | ... | stage N-1 plan]
          -> ShardedPipeline: parent ==ring==> P0 ==ring==> P1 ... ==ring==> parent

* :mod:`repro.shard.partition` — measure per-layer cost (probe forward on
  a pickled plan copy) and cut the layer list greedily under a per-stage
  crossbar (macro) budget; produces pickled stage payloads.
* :mod:`repro.shard.pipeline` — the stage-process executor with
  backpressured shared-memory edges, per-stage occupancy / bubble /
  transport accounting and crash-safe segment unlinking.

Pipelined execution is bit-identical to running the same plan on one
worker: stages snapshot the plan's exact post-prepare state (macro
generator streams included) and FIFO edges preserve batch order, so every
macro sees the same batches in the same order as the uncut plan.

Serving integration: ``ServeConfig(pipeline_stages=N)`` (see
:mod:`repro.serve.service`) builds one pipeline per worker replica;
``python -m repro run|serve|loadtest --pipeline-stages N`` from the shell.

Quickstart::

    from repro.shard import run_pipelined

    report = run_pipelined(model, images, backend="analog", num_stages=2,
                           calibration=images[:16])
    print(report.render())
"""

import dataclasses
import time
from typing import Dict, List, Optional

import numpy as np

from repro.exec.backend import ExecutionContext
from repro.exec.engine import BatchRunner
from repro.exec.plan import PipelineStagePlan, split_plan
from repro.shard.partition import (
    CapacityError,
    PartitionError,
    StagePartition,
    build_stage_payloads,
    count_plan_macros,
    plan_partition,
    probe_layer_costs,
    static_layer_costs,
)
from repro.shard.pipeline import (
    PipelineStageError,
    PipelineStageSnapshot,
    ShardedPipeline,
    StageDiedError,
)


@dataclasses.dataclass
class PipelinedReport:
    """Outcome of one :func:`run_pipelined` execution."""

    backend: str
    logits: np.ndarray
    samples: int
    wall_time_s: float
    prepare_time_s: float
    num_stages: int
    partition: StagePartition
    stage_stats: List[Dict]
    conversions: int = 0

    @property
    def samples_per_second(self) -> float:
        """Steady-state pipelined inference throughput."""
        if self.wall_time_s <= 0:
            return float("inf")
        return self.samples / self.wall_time_s

    def render(self) -> str:
        """Throughput line, the partition table and per-stage occupancy."""
        lines = [
            f"Pipelined {self.backend}: {self.samples} samples through "
            f"{self.num_stages} stages in {self.wall_time_s * 1e3:.1f} ms "
            f"({self.samples_per_second:.1f} samples/s), "
            f"prepare {self.prepare_time_s * 1e3:.1f} ms, "
            f"{self.conversions} conversions",
            self.partition.describe(),
        ]
        for stage in self.stage_stats:
            lines.append(
                f"  stage {stage['stage']}: {stage['batches']} batches, "
                f"busy {stage['forward_s'] * 1e3:.1f} ms, "
                f"bubble {stage['bubble_s'] * 1e3:.1f} ms, "
                f"transport {stage['transport_s'] * 1e3:.1f} ms"
            )
        return "\n".join(lines)


def run_pipelined(model, images: np.ndarray, backend="ideal",
                  context: Optional[ExecutionContext] = None,
                  num_stages: int = 2,
                  probe: Optional[np.ndarray] = None,
                  max_macros_per_stage: Optional[int] = None,
                  slots: int = 2,
                  **context_overrides) -> PipelinedReport:
    """Run ``images`` through ``model`` on a sharded stage pipeline.

    Mirrors :func:`repro.exec.run_model`'s context handling: the backend is
    prepared and compiled exactly as a single-worker run would, the plan is
    cut into ``num_stages`` stage payloads (cost-balanced on a probe
    forward when ``probe`` — defaulting to ``context.calibration`` — is
    available, parameter-count proxy otherwise, capped at
    ``max_macros_per_stage`` macros per stage), and the evaluation batches
    stream through the stage processes.  Logits are bit-identical to the
    single-worker plan on every backend.
    """
    runner = BatchRunner(model, backend, context=context, **context_overrides)
    ctx = runner.context
    try:
        if probe is None:
            probe = ctx.calibration
        partition = build_stage_payloads(
            runner.plan, num_stages, probe=probe,
            max_macros_per_stage=max_macros_per_stage)
        backend_name = runner.backend.name
        prepare_time = runner.prepare_time_s
    finally:
        runner.close()

    images = np.asarray(images, dtype=np.float64)
    batch_size = max(int(ctx.batch_size), 1)
    pipeline = ShardedPipeline(partition.payloads, max_batch=batch_size,
                               slots=slots)
    pipeline.start()
    try:
        start = time.perf_counter()
        futures = [pipeline.submit(images[offset:offset + batch_size])
                   for offset in range(0, images.shape[0], batch_size)]
        outputs = [future.result() for future in futures]
        wall_time = time.perf_counter() - start
        stage_stats = pipeline.stage_stats()
    finally:
        pipeline.close()
    logits = (np.concatenate([logit for logit, _ in outputs], axis=0)
              if outputs else np.zeros((0, 0), dtype=np.float64))
    conversions = (sum(stage["conversions"] for stage in stage_stats)
                   if stage_stats else 0)
    return PipelinedReport(
        backend=backend_name,
        logits=logits,
        samples=int(images.shape[0]),
        wall_time_s=wall_time,
        prepare_time_s=prepare_time,
        num_stages=num_stages,
        partition=partition,
        stage_stats=stage_stats,
        conversions=conversions,
    )


__all__ = [
    "CapacityError",
    "PartitionError",
    "PipelineStageError",
    "PipelineStagePlan",
    "PipelineStageSnapshot",
    "PipelinedReport",
    "ShardedPipeline",
    "StageDiedError",
    "StagePartition",
    "build_stage_payloads",
    "count_plan_macros",
    "plan_partition",
    "probe_layer_costs",
    "run_pipelined",
    "split_plan",
    "static_layer_costs",
]
