"""Integer quantisation formats (the paper's INT8 baseline).

The AFPR-CIM paper compares its FP8 (E2M5) data path against an INT8 data
path realised on the same analog crossbar with a conventional single-slope
ADC.  This module provides the integer quantisation primitives used both by
that baseline and by the internal INT-domain representation of the crossbar
(weights are programmed as multi-level conductances, i.e. small unsigned
integers).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.formats.rounding import RoundingMode, round_integer


@dataclasses.dataclass(frozen=True)
class IntFormat:
    """A fixed-point integer format described by bit width and signedness."""

    bits: int
    signed: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("bits must be >= 1")
        if not self.name:
            prefix = "INT" if self.signed else "UINT"
            object.__setattr__(self, "name", f"{prefix}{self.bits}")

    @property
    def qmin(self) -> int:
        """Smallest representable integer."""
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def qmax(self) -> int:
        """Largest representable integer."""
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    @property
    def levels(self) -> int:
        """Number of representable levels."""
        return 1 << self.bits

    @property
    def total_bits(self) -> int:
        """Total storage width (mirrors :class:`FloatFormat.total_bits`)."""
        return self.bits

    def dynamic_range_db(self) -> float:
        """Dynamic range (max magnitude over one LSB) in dB."""
        return 20.0 * np.log10(max(abs(self.qmin), self.qmax))

    def clamp(self, q: np.ndarray) -> np.ndarray:
        """Clamp integer values into the representable range."""
        return np.clip(q, self.qmin, self.qmax)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IntFormat({self.name}, [{self.qmin}, {self.qmax}])"


#: The paper's integer baseline format.
INT8 = IntFormat(bits=8, signed=True)

#: Low-precision variant used for multi-level RRAM conductance levels.
INT4 = IntFormat(bits=4, signed=False, name="UINT4")

#: Unsigned 8-bit, used for crossbar input voltage codes.
UINT8 = IntFormat(bits=8, signed=False)


def quantize_int(
    x: np.ndarray,
    scale: float,
    fmt: IntFormat = INT8,
    zero_point: int = 0,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Quantise real values to integers: ``q = clamp(round(x / scale) + zp)``."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    x = np.asarray(x, dtype=np.float64)
    q = round_integer(x / scale, mode=rounding, rng=rng) + zero_point
    return fmt.clamp(q).astype(np.int64)


def dequantize_int(q: np.ndarray, scale: float, zero_point: int = 0) -> np.ndarray:
    """Reconstruct real values from integers: ``x = (q - zp) * scale``."""
    q = np.asarray(q, dtype=np.float64)
    return (q - zero_point) * scale


def fake_quant_int(
    x: np.ndarray,
    scale: float,
    fmt: IntFormat = INT8,
    zero_point: int = 0,
    rounding: RoundingMode = RoundingMode.NEAREST_EVEN,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Quantise and immediately dequantise (the PTQ "fake quant" op)."""
    q = quantize_int(x, scale, fmt=fmt, zero_point=zero_point, rounding=rounding, rng=rng)
    return dequantize_int(q, scale, zero_point=zero_point)


def symmetric_scale(x: np.ndarray, fmt: IntFormat = INT8) -> float:
    """Absolute-max symmetric scale so that ``max|x|`` maps to ``qmax``."""
    amax = float(np.max(np.abs(np.asarray(x, dtype=np.float64))))
    if amax == 0.0:
        return 1.0
    scale = amax / fmt.qmax
    # Guard against underflow to zero for denormal-only inputs.
    return scale if scale > 0.0 else 1.0


def asymmetric_scale_zero_point(
    x: np.ndarray, fmt: IntFormat = UINT8
) -> Tuple[float, int]:
    """Min/max asymmetric scale and zero point covering the full range of ``x``."""
    x = np.asarray(x, dtype=np.float64)
    lo = float(np.min(x))
    hi = float(np.max(x))
    if hi == lo:
        return 1.0, 0
    scale = (hi - lo) / (fmt.qmax - fmt.qmin)
    zero_point = int(round(fmt.qmin - lo / scale))
    zero_point = int(np.clip(zero_point, fmt.qmin, fmt.qmax))
    return scale, zero_point
