"""Ablation benchmark: macro power and efficiency versus weight sparsity.

The paper extracts weight sparsity from the network model and deploys it in
the array, but reports its headline numbers in "high-density mode at 0 %
sparsity".  This ablation sweeps sparsity through the macro power model to
show how much head-room sparse layers give.
"""

import numpy as np
import pytest

from repro.analysis.ablations import run_sparsity_ablation


@pytest.mark.benchmark(group="ablations")
def test_sparsity_sweep(benchmark):
    result = benchmark(run_sparsity_ablation)
    print("\n" + result.render())

    # Power falls and efficiency rises monotonically with sparsity.
    assert np.all(np.diff(result.total_power_mw) < 0)
    assert np.all(np.diff(result.efficiency_tops_per_watt) > 0)
    # The 0 % sparsity point is the Table I headline.
    assert result.efficiency_tops_per_watt[0] == pytest.approx(19.89, rel=0.02)
