"""Open-loop load generation: drive the service with a realistic arrival
process.

Open loop means arrivals do not wait for completions — exactly how outside
traffic hits a real service — so queueing delay and batching behaviour show
up honestly instead of being hidden by client back-pressure.  Every process
is seeded, so a load test (and the CI smoke job) is reproducible down to
the arrival timestamps.

Arrival processes
-----------------
``poisson``
    Exponential inter-arrival times at a fixed mean rate — the standard
    memoryless traffic model.
``bursty``
    A two-state modulated Poisson process: geometrically-distributed runs
    of requests at ``burst_factor x`` the base rate separated by quiet
    phases, with the phases sized so the *mean* offered rate equals the
    requested rate.  Sustained bursts grow queues and stretch tail latency.
``uniform``
    Deterministic, evenly spaced arrivals — the control case.
"""

from __future__ import annotations

import asyncio
import dataclasses
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.nn.model import Model
from repro.serve.metrics import MetricsSnapshot
from repro.serve.service import InferenceService, ServeConfig


def poisson_arrivals(rate_rps: float, num_requests: int, seed: int = 0) -> np.ndarray:
    """Cumulative arrival times (seconds) of a Poisson process."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
    return np.cumsum(gaps)


def bursty_arrivals(rate_rps: float, num_requests: int, seed: int = 0,
                    burst_factor: float = 8.0, burst_fraction: float = 0.25,
                    mean_burst_length: float = 16.0) -> np.ndarray:
    """Cumulative arrival times of a two-state (on/off) modulated Poisson
    process.

    The generator alternates between a *burst* state emitting at
    ``burst_factor x rate_rps`` and a *quiet* state emitting at a reduced
    off-rate.  State runs are geometrically distributed: bursts hold for
    ``mean_burst_length`` requests on average, quiet phases for however long
    keeps the burst share of requests at ``burst_fraction`` — and the
    off-rate is chosen so the overall mean rate stays ``rate_rps``.  Unlike
    an i.i.d. heavy-tailed gap mixture, the runs produce *sustained* bursts,
    which is what actually grows queues and stretches tail latency.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must be > 1")
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError("burst_fraction must be in (0, 1)")
    if mean_burst_length < 1.0:
        raise ValueError("mean_burst_length must be >= 1")
    rng = np.random.default_rng(seed)
    burst_rate = burst_factor * rate_rps
    # Mean interval must equal 1/rate:  f/burst_rate + (1-f)/off_rate = 1/rate.
    off_interval = (1.0 / rate_rps - burst_fraction / burst_rate) / (1.0 - burst_fraction)
    # Burst runs average mean_burst_length requests; quiet runs are sized so
    # bursts carry burst_fraction of all requests.
    mean_quiet_length = mean_burst_length * (1.0 - burst_fraction) / burst_fraction
    gaps: List[float] = []
    in_burst = bool(rng.random() < burst_fraction)
    while len(gaps) < num_requests:
        if in_burst:
            run = rng.geometric(min(1.0, 1.0 / mean_burst_length))
            gaps.extend(rng.exponential(1.0 / burst_rate, size=run))
        else:
            run = rng.geometric(min(1.0, 1.0 / mean_quiet_length))
            gaps.extend(rng.exponential(off_interval, size=run))
        in_burst = not in_burst
    return np.cumsum(np.asarray(gaps[:num_requests], dtype=np.float64))


def uniform_arrivals(rate_rps: float, num_requests: int, seed: int = 0) -> np.ndarray:
    """Evenly spaced arrivals at exactly ``rate_rps`` (seed unused)."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    return (np.arange(num_requests) + 1) / rate_rps


#: Arrival-process name -> generator of cumulative arrival times.
ARRIVAL_PROCESSES: Dict[str, Callable[..., np.ndarray]] = {
    "poisson": poisson_arrivals,
    "bursty": bursty_arrivals,
    "uniform": uniform_arrivals,
}


def make_arrivals(pattern: str, rate_rps: float, num_requests: int,
                  seed: int = 0, **kwargs) -> np.ndarray:
    """Generate arrival times for a named pattern.

    Raises ``KeyError`` listing the known patterns on an unknown name.
    """
    try:
        generator = ARRIVAL_PROCESSES[pattern]
    except KeyError:
        raise KeyError(
            f"unknown arrival pattern {pattern!r}; "
            f"known patterns: {', '.join(sorted(ARRIVAL_PROCESSES))}"
        ) from None
    return generator(rate_rps, num_requests, seed=seed, **kwargs)


@dataclasses.dataclass(frozen=True)
class LoadResult:
    """Outcome of one open-loop load run."""

    logits: np.ndarray
    snapshot: MetricsSnapshot
    offered_rate_rps: float
    wall_time_s: float
    failures: int
    #: Per-worker plan-stage breakdowns, when the load test collected them.
    stage_profiles: Optional[List[Dict[str, float]]] = None

    @property
    def achieved_rps(self) -> float:
        """Completed requests per second over the whole run."""
        if self.wall_time_s <= 0:
            return float("inf")
        return self.snapshot.requests / self.wall_time_s

    def render(self) -> str:
        """Offered vs. achieved load followed by the metrics report."""
        return (
            f"Offered load: {self.offered_rate_rps:.1f} req/s, "
            f"achieved {self.achieved_rps:.1f} req/s, "
            f"{self.failures} failed/dropped\n" + self.snapshot.render()
        )


async def run_open_loop(service: InferenceService, images: np.ndarray,
                        arrivals: np.ndarray, time_scale: float = 1.0
                        ) -> LoadResult:
    """Fire requests at the service on an arrival schedule (open loop).

    ``images`` provides the request payloads (request ``i`` sends sample
    ``i % len(images)``); ``arrivals`` are cumulative offsets in seconds,
    multiplied by ``time_scale`` (``0`` submits everything immediately —
    useful for deterministic tests).  Returns logits in request order with
    failed/dropped rows zero-filled.
    """
    images = np.asarray(images, dtype=np.float64)
    arrivals = np.asarray(arrivals, dtype=np.float64) * time_scale
    loop = asyncio.get_running_loop()
    start = loop.time()
    futures: List["asyncio.Future"] = []
    for i, offset in enumerate(arrivals):
        delay = start + float(offset) - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        try:
            futures.append(service.submit_nowait(images[i % len(images)]))
        except Exception:  # noqa: BLE001 — a closed service fails the request
            futures.append(None)
    results = await asyncio.gather(
        *[f for f in futures if f is not None], return_exceptions=True
    )
    wall_time = loop.time() - start
    rows = []
    failures = 0
    result_iter = iter(results)
    sample_logit: Optional[np.ndarray] = None
    for future in futures:
        outcome = None if future is None else next(result_iter)
        if outcome is None or isinstance(outcome, BaseException):
            failures += 1
            rows.append(None)
        else:
            rows.append(outcome)
            sample_logit = outcome
    width = sample_logit.shape[1] if sample_logit is not None else 0
    logits = np.zeros((len(futures), width), dtype=np.float64)
    for i, row in enumerate(rows):
        if row is not None:
            logits[i] = row[0]
    duration = float(arrivals[-1]) if len(arrivals) else 0.0
    offered = len(arrivals) / duration if duration > 0 else float("inf")
    return LoadResult(
        logits=logits,
        snapshot=service.metrics_snapshot(),
        offered_rate_rps=offered,
        wall_time_s=wall_time,
        failures=failures,
    )


def run_loadtest(model: Model, images: np.ndarray, config: Optional[ServeConfig] = None,
                 pattern: str = "poisson", rate_rps: float = 2000.0,
                 num_requests: int = 256, seed: int = 0,
                 time_scale: float = 1.0,
                 collect_profile: bool = False) -> LoadResult:
    """Start a service, drive it with a seeded arrival process, drain, report.

    ``collect_profile=True`` additionally gathers every worker's plan-stage
    breakdown (fetched from the worker processes in ``workers="process"``
    mode) before shutting the service down.
    """
    arrivals = make_arrivals(pattern, rate_rps, num_requests, seed=seed)

    async def _run() -> LoadResult:
        service = InferenceService(model, config)
        await service.start()
        try:
            result = await run_open_loop(service, images, arrivals,
                                         time_scale=time_scale)
            if collect_profile:
                result = dataclasses.replace(
                    result, stage_profiles=await service.stage_profiles())
        finally:
            await service.stop()
        return result

    return asyncio.run(_run())
