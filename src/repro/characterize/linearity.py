"""Pure INL/DNL math over measured-vs-ideal converter staircases.

Both converters of the macro reduce to a monotone staircase once measured:
the FP-DAC's per-code output voltages, and the FP-ADC's per-code transition
charges.  The floating-point grid makes the classic integer-converter
definitions work unchanged — within one exponent binade the ideal steps are
uniform, and the step across a binade boundary equals the *lower* binade's
step (``2^{e+1} - (2 - 1/L)·2^e = 2^e/L``), so every adjacent pair has a
well-defined local LSB.

The functions here are deliberately pure array math (no converter objects),
so the tests can drive them with analytically known staircases:

* an ideal staircase gives ``INL = DNL = 0`` exactly;
* a single-code offset ``δ`` at code ``j`` gives ``INL[j] = δ/LSB(j)``,
  ``DNL[j-1] = +δ/step(j-1)`` and ``DNL[j] = -δ/step(j)``, everything else
  untouched.

INL here is *absolute* (no endpoint correction): a static gain error shows
up as INL rather than being fitted away, which is what a regression gate
wants — the ideal reference is exactly computable, so there is no fit noise
to hide behind.
"""

from __future__ import annotations

import numpy as np


def _validated(measured: np.ndarray, ideal: np.ndarray) -> tuple:
    measured = np.asarray(measured, dtype=np.float64)
    ideal = np.asarray(ideal, dtype=np.float64)
    if measured.ndim != 1 or ideal.ndim != 1:
        raise ValueError("staircases are one-dimensional")
    if measured.shape != ideal.shape:
        raise ValueError("measured and ideal staircases must match in length")
    if measured.size < 2:
        raise ValueError("need at least two staircase levels")
    if np.any(np.diff(ideal) <= 0):
        raise ValueError("ideal staircase must be strictly increasing")
    return measured, ideal


def local_lsb(ideal: np.ndarray) -> np.ndarray:
    """The ideal step size *at* each code (same length as ``ideal``).

    Code ``k`` uses the ideal step of the segment ``[k, k+1]``; the last
    code reuses the final segment's step.
    """
    ideal = np.asarray(ideal, dtype=np.float64)
    steps = np.diff(ideal)
    return np.concatenate([steps, steps[-1:]])


def staircase_dnl(measured: np.ndarray, ideal: np.ndarray) -> np.ndarray:
    """Differential non-linearity per adjacent code pair, in local LSBs.

    ``DNL[k] = (measured[k+1] - measured[k]) / (ideal[k+1] - ideal[k]) - 1``
    — zero for an ideal staircase, ``-1`` for a fully missing code.  Length
    is ``len(measured) - 1``.
    """
    measured, ideal = _validated(measured, ideal)
    return np.diff(measured) / np.diff(ideal) - 1.0


def staircase_inl(measured: np.ndarray, ideal: np.ndarray) -> np.ndarray:
    """Integral non-linearity per code, in units of the local ideal LSB."""
    measured, ideal = _validated(measured, ideal)
    return (measured - ideal) / local_lsb(ideal)


def worst_abs(values: np.ndarray) -> float:
    """Largest magnitude of an error array (``0.0`` when empty)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    return float(np.max(np.abs(values)))
