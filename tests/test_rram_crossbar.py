"""Unit tests for the crossbar MAC engine and weight programming."""

import numpy as np
import pytest

from repro.rram import (
    Crossbar,
    CrossbarConfig,
    DifferentialMapping,
    OffsetMapping,
    RRAMDeviceModel,
    RRAMStatistics,
    write_verify,
)


def quiet_device(seed=0):
    """A device with no stochastic effects, for exact-math tests."""
    stats = RRAMStatistics(programming_sigma=0.0, read_noise_sigma=0.0,
                           drift_coefficient=0.0,
                           stuck_at_lrs_probability=0.0, stuck_at_hrs_probability=0.0)
    return RRAMDeviceModel(statistics=stats, seed=seed)


class TestCrossbarConfig:
    def test_paper_dimensions(self):
        config = CrossbarConfig()
        assert config.rows == 576
        assert config.cols == 256
        assert config.cells == 147456

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CrossbarConfig(rows=0)
        with pytest.raises(ValueError):
            CrossbarConfig(v_input_max=0.0)


class TestCrossbarEvaluate:
    def test_ohms_law_kcl_exact(self):
        config = CrossbarConfig(rows=4, cols=3, read_noise_enabled=False)
        xbar = Crossbar(config, device=quiet_device())
        g = np.array([
            [10e-6, 5e-6, 1e-6],
            [20e-6, 1e-6, 2e-6],
            [1e-6, 15e-6, 3e-6],
            [5e-6, 5e-6, 4e-6],
        ])
        xbar.program(g, ideal=True)
        v = np.array([1.0, 0.5, 2.0, 0.0])
        readout = xbar.evaluate(v)
        # Ideal programming snaps to the MLC grid; the MAC must equal the dot
        # product against the *programmed* conductances exactly.
        np.testing.assert_allclose(readout.currents, v @ np.asarray(xbar.conductances),
                                   rtol=1e-12)

    def test_batch_evaluation(self):
        config = CrossbarConfig(rows=8, cols=4, read_noise_enabled=False)
        xbar = Crossbar(config, device=quiet_device())
        xbar.program(np.full((8, 4), 10e-6), ideal=True)
        v = np.random.default_rng(0).uniform(0, 1, (5, 8))
        readout = xbar.evaluate(v)
        assert readout.currents.shape == (5, 4)
        np.testing.assert_allclose(readout.currents, v @ np.asarray(xbar.conductances),
                                   rtol=1e-12)

    def test_partial_rows_are_padded(self):
        config = CrossbarConfig(rows=10, cols=2, read_noise_enabled=False)
        xbar = Crossbar(config, device=quiet_device())
        achieved = xbar.program(np.full((4, 2), 10e-6), ideal=True)
        readout = xbar.evaluate(np.ones(4))
        # Untouched rows sit at g_min; inputs beyond 4 are zero, so only the
        # programmed sub-array contributes.
        assert readout.currents.shape == (2,)
        np.testing.assert_allclose(readout.currents, achieved.sum(axis=0), rtol=1e-12)

    def test_too_many_inputs_rejected(self):
        xbar = Crossbar(CrossbarConfig(rows=4, cols=2), device=quiet_device())
        with pytest.raises(ValueError):
            xbar.evaluate(np.ones(5))

    def test_input_clipping(self):
        config = CrossbarConfig(rows=2, cols=1, v_input_max=1.0, read_noise_enabled=False)
        xbar = Crossbar(config, device=quiet_device())
        achieved = xbar.program(np.full((2, 1), 10e-6), ideal=True)
        readout = xbar.evaluate(np.array([5.0, 5.0]))
        # Inputs clip to 1 V, so the current equals the column conductance sum.
        np.testing.assert_allclose(readout.currents, achieved.sum(axis=0))

    def test_read_noise_changes_results(self):
        stats = RRAMStatistics(read_noise_sigma=0.05, programming_sigma=0.0,
                               stuck_at_lrs_probability=0.0, stuck_at_hrs_probability=0.0)
        device = RRAMDeviceModel(statistics=stats, seed=0)
        xbar = Crossbar(CrossbarConfig(rows=16, cols=4, read_noise_enabled=True), device=device)
        xbar.program(np.full((16, 4), 10e-6), ideal=True)
        v = np.ones(16)
        a = xbar.evaluate(v).currents
        b = xbar.evaluate(v).currents
        assert not np.allclose(a, b)

    def test_ir_drop_reduces_far_cell_current(self):
        config = CrossbarConfig(rows=64, cols=32, wire_resistance=5.0,
                                ir_drop_enabled=True, read_noise_enabled=False)
        xbar = Crossbar(config, device=quiet_device())
        xbar.program(np.full((64, 32), 20e-6), ideal=True)
        ideal = xbar.ideal_mac(np.ones(64))
        dropped = xbar.evaluate(np.ones(64)).currents
        assert np.all(dropped < ideal)
        # The far column suffers more than the near column.
        assert (ideal[-1] - dropped[-1]) > (ideal[0] - dropped[0])

    def test_sparsity_measurement(self):
        xbar = Crossbar(CrossbarConfig(rows=4, cols=4), device=quiet_device())
        g = np.full((4, 4), 1e-6)
        g[0, 0] = 25e-6
        xbar.program(g, ideal=True)
        assert xbar.sparsity() == pytest.approx(15 / 16)

    def test_column_current(self):
        config = CrossbarConfig(rows=3, cols=2, read_noise_enabled=False)
        xbar = Crossbar(config, device=quiet_device())
        g = np.array([[10e-6, 1e-6], [10e-6, 1e-6], [10e-6, 1e-6]])
        achieved = xbar.program(g, ideal=True)
        assert xbar.column_current(np.ones(3), 0) == pytest.approx(achieved[:, 0].sum())
        with pytest.raises(ValueError):
            xbar.column_current(np.ones(3), 5)

    def test_program_too_large_rejected(self):
        xbar = Crossbar(CrossbarConfig(rows=4, cols=4), device=quiet_device())
        with pytest.raises(ValueError):
            xbar.program(np.full((5, 4), 1e-6))


class TestWeightMapping:
    def test_differential_mapping_signs(self):
        mapping = DifferentialMapping(device=quiet_device())
        weights = np.array([[1.0, -1.0], [0.5, 0.0]])
        g, w_max = mapping.to_conductances(weights)
        assert w_max == 1.0
        assert g.shape == (2, 4)
        # Positive weight -> G+ high, G- at minimum.
        assert g[0, 0] > g[0, 1]
        # Negative weight -> G- high.
        assert g[0, 3] > g[0, 2]
        # Zero weight -> both at minimum.
        assert g[1, 2] == pytest.approx(g[1, 3])

    def test_differential_mapping_reconstruction(self):
        device = quiet_device()
        mapping = DifferentialMapping(device=device)
        rng = np.random.default_rng(0)
        weights = rng.standard_normal((16, 8))
        g, w_max = mapping.to_conductances(weights)
        v = rng.uniform(0, 1, 16)
        currents = v @ g
        logical = mapping.combine_currents(currents)
        g_span = device.g_max - device.g_min
        reconstructed = logical / g_span * w_max
        np.testing.assert_allclose(reconstructed, v @ weights, rtol=1e-9, atol=1e-12)

    def test_differential_physical_columns(self):
        mapping = DifferentialMapping(device=quiet_device())
        assert mapping.physical_columns(10) == 20

    def test_combine_requires_even_columns(self):
        mapping = DifferentialMapping(device=quiet_device())
        with pytest.raises(ValueError):
            mapping.combine_currents(np.zeros(3))

    def test_offset_mapping_midpoint(self):
        device = quiet_device()
        mapping = OffsetMapping(device=device)
        g, _ = mapping.to_conductances(np.zeros((2, 2)))
        mid = 0.5 * (device.g_max + device.g_min)
        np.testing.assert_allclose(g, mid)

    def test_offset_mapping_range(self):
        device = quiet_device()
        mapping = OffsetMapping(device=device)
        g, w_max = mapping.to_conductances(np.array([[-2.0, 2.0]]))
        assert w_max == 2.0
        assert g[0, 0] == pytest.approx(device.g_min)
        assert g[0, 1] == pytest.approx(device.g_max)

    def test_write_verify_converges(self):
        device = RRAMDeviceModel(statistics=RRAMStatistics(programming_sigma=0.05,
                                                           stuck_at_lrs_probability=0.0,
                                                           stuck_at_hrs_probability=0.0),
                                 seed=3)
        target = np.full((32, 32), 13e-6)
        loose, _ = write_verify(device, target, tolerance=0.5, max_iterations=1)
        tight, iterations = write_verify(device, target, tolerance=0.02, max_iterations=20)
        err_loose = np.mean(np.abs(loose - target) / target)
        err_tight = np.mean(np.abs(tight - target) / target)
        assert err_tight < err_loose
        assert iterations > 1

    def test_write_verify_invalid_tolerance(self):
        with pytest.raises(ValueError):
            write_verify(quiet_device(), np.full((2, 2), 1e-6), tolerance=0.0)
