"""Neural-network layers with forward and backward passes (numpy only).

The Fig. 6(c) experiment needs real trained networks (a ResNet-style and a
MobileNet-style CNN) whose weights and activation statistics are then fed to
the PTQ / CIM-noise evaluation.  These layers provide exactly the pieces
those models require — 2-D convolution (standard, grouped/depthwise),
batch normalisation, ReLU, non-overlapping pooling, global average pooling,
flattening and a fully connected layer — each with a hand-written backward
pass so the models can be trained from scratch without any deep-learning
framework.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.functional import col2im, conv_output_size, im2col


class Parameter:
    """A trainable tensor with its gradient."""

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self):
        """Shape of the underlying value array."""
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"


class Layer:
    """Base class: layers transform activations and can backpropagate."""

    #: Layers that hold a weight matrix the CIM backend can map to a crossbar.
    is_matmul_layer = False

    #: Optional quantisation adapter (see :mod:`repro.nn.quantize`).  When set
    #: on a matmul layer it is consulted during inference to fake-quantise the
    #: incoming activations and the weights and to perturb the output with
    #: CIM non-idealities.  ``None`` means full-precision behaviour.
    quantization = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output (and cache what backward needs)."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate: accumulate parameter gradients, return input grad."""
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of this layer (may be empty)."""
        return []

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


def _kaiming_init(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation, appropriate for ReLU networks."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.standard_normal(shape) * std


class Conv2d(Layer):
    """2-D convolution over NCHW inputs (optionally grouped / depthwise).

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.  For a depthwise convolution set
        ``groups == in_channels == out_channels``.
    kernel_size:
        Square kernel size.
    stride, padding:
        Convolution stride and zero padding.
    groups:
        Number of channel groups; both channel counts must divide by it.
    bias:
        Whether to add a per-output-channel bias.
    """

    is_matmul_layer = True

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 bias: bool = True, rng: Optional[np.random.Generator] = None) -> None:
        if in_channels % groups or out_channels % groups:
            raise ValueError("channel counts must be divisible by groups")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(
            _kaiming_init((out_channels, in_channels // groups, kernel_size, kernel_size),
                          fan_in, rng),
            name="conv.weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="conv.bias") if bias else None
        self._cache: Dict[str, np.ndarray] = {}

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    # ------------------------------------------------------------------
    def _group_slices(self):
        in_per_group = self.in_channels // self.groups
        out_per_group = self.out_channels // self.groups
        for g in range(self.groups):
            yield (
                slice(g * in_per_group, (g + 1) * in_per_group),
                slice(g * out_per_group, (g + 1) * out_per_group),
            )

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        weight_value = self.weight.value
        if self.quantization is not None and not training:
            x = self.quantization.process_input(x)
            weight_value = self.quantization.process_weight(weight_value)
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {c}")
        h_out = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        w_out = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        out = np.empty((n, self.out_channels, h_out, w_out), dtype=np.float64)
        self._cache = {"input_shape": x.shape, "cols": [], "h_out": h_out, "w_out": w_out}

        for in_slice, out_slice in self._group_slices():
            cols = im2col(x[:, in_slice], self.kernel_size, self.stride, self.padding)
            w_mat = weight_value[out_slice].reshape(out_slice.stop - out_slice.start, -1)
            result = cols @ w_mat.T
            out[:, out_slice] = result.reshape(n, h_out, w_out, -1).transpose(0, 3, 1, 2)
            if training:
                self._cache["cols"].append(cols)
        if self.bias is not None:
            out += self.bias.value[None, :, None, None]
        if self.quantization is not None and not training:
            out = self.quantization.process_output(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        n, _, h_out, w_out = grad_output.shape
        input_shape = self._cache["input_shape"]
        grad_input = np.zeros(input_shape, dtype=np.float64)
        in_per_group = self.in_channels // self.groups

        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))

        for g, (in_slice, out_slice) in enumerate(self._group_slices()):
            cols = self._cache["cols"][g]
            grad_out_mat = grad_output[:, out_slice].transpose(0, 2, 3, 1).reshape(
                n * h_out * w_out, -1
            )
            w_mat = self.weight.value[out_slice].reshape(out_slice.stop - out_slice.start, -1)
            self.weight.grad[out_slice] += (grad_out_mat.T @ cols).reshape(
                self.weight.value[out_slice].shape
            )
            grad_cols = grad_out_mat @ w_mat
            group_shape = (n, in_per_group, input_shape[2], input_shape[3])
            grad_input[:, in_slice] = col2im(
                grad_cols, group_shape, self.kernel_size, self.stride, self.padding
            )
        return grad_input


class Linear(Layer):
    """Fully connected layer ``y = x W + b`` with ``W`` of shape (in, out)."""

    is_matmul_layer = True

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _kaiming_init((in_features, out_features), in_features, rng), name="linear.weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="linear.bias") if bias else None
        self._input: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected input of shape (batch, {self.in_features})")
        weight_value = self.weight.value
        if self.quantization is not None and not training:
            x = self.quantization.process_input(x)
            weight_value = self.quantization.process_weight(weight_value)
        if training:
            self._input = x
        out = x @ weight_value
        if self.bias is not None:
            out = out + self.bias.value
        if self.quantization is not None and not training:
            out = self.quantization.process_output(out)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if self._input is None:
            raise RuntimeError("backward called before a training forward pass")
        self.weight.grad += self._input.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.value.T


class BatchNorm2d(Layer):
    """Batch normalisation over the channel dimension of NCHW tensors."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="bn.gamma")
        self.beta = Parameter(np.zeros(num_features), name="bn.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: Dict[str, np.ndarray] = {}

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(f"expected NCHW input with {self.num_features} channels")
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) / std[None, :, None, None]
        if training:
            self._cache = {"x_hat": x_hat, "std": std}
        return self.gamma.value[None, :, None, None] * x_hat + self.beta.value[None, :, None, None]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        x_hat = self._cache["x_hat"]
        std = self._cache["std"]
        n, _, h, w = grad_output.shape
        m = n * h * w

        self.gamma.grad += (grad_output * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_output.sum(axis=(0, 2, 3))

        grad_x_hat = grad_output * self.gamma.value[None, :, None, None]
        sum_grad = grad_x_hat.sum(axis=(0, 2, 3), keepdims=True)
        sum_grad_xhat = (grad_x_hat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_input = (grad_x_hat - sum_grad / m - x_hat * sum_grad_xhat / m) / std[
            None, :, None, None
        ]
        return grad_input


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training forward pass")
        return np.asarray(grad_output, dtype=np.float64) * self._mask


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel_size: int = 2) -> None:
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self._cache: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"spatial size ({h}, {w}) not divisible by pool size {k}")
        reshaped = x.reshape(n, c, h // k, k, w // k, k)
        out = reshaped.max(axis=(3, 5))
        if training:
            mask = reshaped == out[:, :, :, None, :, None]
            # Break ties so exactly one element per window backpropagates:
            # group the window elements on the last axis, keep the first max.
            windows = mask.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // k, w // k, k * k)
            first = np.cumsum(windows, axis=-1) == 1
            windows = windows & first
            mask = windows.reshape(n, c, h // k, w // k, k, k).transpose(0, 1, 2, 4, 3, 5)
            self._cache = {"mask": mask, "input_shape": x.shape}
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        mask = self._cache["mask"]
        n, c, h, w = self._cache["input_shape"]
        k = self.kernel_size
        grad = mask * grad_output[:, :, :, None, :, None]
        return grad.reshape(n, c, h, w)


class AvgPool2d(Layer):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel_size: int = 2) -> None:
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self._input_shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(f"spatial size ({h}, {w}) not divisible by pool size {k}")
        if training:
            self._input_shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        n, c, h, w = self._input_shape
        k = self.kernel_size
        expanded = np.repeat(np.repeat(grad_output, k, axis=2), k, axis=3)
        return expanded / (k * k)


class GlobalAvgPool2d(Layer):
    """Average over all spatial positions, producing (batch, channels)."""

    def __init__(self) -> None:
        self._input_shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        n, c, h, w = self._input_shape
        return np.broadcast_to(grad_output[:, :, None, None], (n, c, h, w)) / (h * w)


class Flatten(Layer):
    """Flatten everything after the batch dimension."""

    def __init__(self) -> None:
        self._input_shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float64).reshape(self._input_shape)
