"""Auto-datasheet generation: one markdown + JSON document per macro config.

A :class:`Datasheet` bundles everything one characterization run measured
about one macro configuration — the config table, every sweep's scalars and
tables, and the evaluated spec lines — and renders it twice: a sorted-key
JSON document (machine-readable, byte-stable for a fixed seed, committed as
a regression artifact) and a markdown datasheet for humans, with the spec
verdict table up front the way a silicon datasheet leads with its
electrical characteristics.

Nothing in a datasheet derives from wall-clock time; two runs with the same
options produce bit-identical files.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List

from repro.characterize.specs import SpecLine
from repro.characterize.sweeps import SweepResult
from repro.core.config import MacroConfig


def _config_summary(macro: MacroConfig) -> Dict[str, object]:
    """The identification table of the datasheet, all plain JSON types."""
    return {
        "format": macro.format_name,
        "rows": macro.rows,
        "cols": macro.cols,
        "analog_supply_v": macro.analog_supply,
        "digital_supply_v": macro.digital_supply,
        "conversion_time_ns": macro.conversion_time * 1e9,
        "integration_time_ns": macro.adc.integration_time * 1e9,
        "unit_capacitance_ff": macro.adc.unit_capacitance * 1e15,
        "full_scale_current_ua": macro.adc.full_scale_current * 1e6,
        "dac_full_scale_v": macro.dac.v_full_scale,
        "conductance_levels": macro.conductance.levels,
        "g_min_us": macro.conductance.g_min * 1e6,
        "g_max_us": macro.conductance.g_max * 1e6,
    }


@dataclasses.dataclass
class Datasheet:
    """The complete characterization record of one macro configuration."""

    config_name: str
    macro: MacroConfig
    sweeps: List[SweepResult]
    spec_lines: List[SpecLine]
    seed: int

    @property
    def passed(self) -> bool:
        """True when every spec line passes."""
        return all(line.passed for line in self.spec_lines)

    @property
    def scalars(self) -> Dict[str, float]:
        """All sweep scalars merged (sweep names prefix on collision)."""
        merged: Dict[str, float] = {}
        for sweep in self.sweeps:
            for key, value in sweep.scalars.items():
                name = key if key not in merged else f"{sweep.name}.{key}"
                merged[name] = float(value)
        return merged

    # ------------------------------------------------------------------
    def to_document(self) -> Dict[str, object]:
        """The datasheet as one plain-JSON-types document."""
        return {
            "config_name": self.config_name,
            "seed": self.seed,
            "passed": self.passed,
            "macro": _config_summary(self.macro),
            "scalars": self.scalars,
            "spec_lines": [
                {
                    "name": line.name,
                    "kind": line.kind,
                    "limit": line.limit,
                    "units": line.units,
                    "description": line.description,
                    "measured": line.measured,
                    "margin": line.margin,
                    "verdict": line.verdict,
                }
                for line in self.spec_lines
            ],
            "sweeps": [
                {
                    "name": sweep.name,
                    "scalars": {k: float(v) for k, v in sweep.scalars.items()},
                    "tables": sweep.tables,
                    "notes": sweep.notes,
                }
                for sweep in self.sweeps
            ],
        }

    def to_json(self) -> str:
        """Byte-stable JSON rendering (sorted keys, fixed separators)."""
        return json.dumps(self.to_document(), sort_keys=True, indent=2) + "\n"

    # ------------------------------------------------------------------
    def render_markdown(self) -> str:
        """Human-readable datasheet, spec verdicts first."""
        lines: List[str] = []
        title = f"AFPR-CIM macro datasheet — `{self.config_name}`"
        lines += [f"# {title}", ""]
        verdict = "PASS" if self.passed else "**FAIL**"
        lines += [f"Overall verdict: {verdict} "
                  f"({sum(l.passed for l in self.spec_lines)}/"
                  f"{len(self.spec_lines)} spec lines pass, seed {self.seed})",
                  ""]

        lines += ["## Spec lines", "",
                  "| spec | limit | measured | margin | verdict |",
                  "|---|---|---|---|---|"]
        for line in self.spec_lines:
            bound = "<=" if line.kind == "max" else ">="
            measured = ("—" if line.measured is None
                        else f"{line.measured:.6g}")
            margin = ("—" if line.measured is None
                      else f"{line.margin:+.3f}")
            lines.append(
                f"| {line.name} | {bound} {line.limit:g} {line.units} "
                f"| {measured} | {margin} | {line.verdict} |")
        lines.append("")

        lines += ["## Configuration", "", "| parameter | value |", "|---|---|"]
        for key, value in _config_summary(self.macro).items():
            rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"| {key} | {rendered} |")
        lines.append("")

        for sweep in self.sweeps:
            lines += [f"## Sweep: {sweep.name}", ""]
            if sweep.scalars:
                lines += ["| scalar | value |", "|---|---|"]
                for key in sorted(sweep.scalars):
                    lines.append(f"| {key} | {sweep.scalars[key]:.6g} |")
                lines.append("")
            for note in sweep.notes:
                lines.append(f"> {note}")
            if sweep.notes:
                lines.append("")
            for table_name, table in sweep.tables.items():
                rows = table["rows"]
                lines += [f"### {table_name} ({len(rows)} rows)", ""]
                lines.append("| " + " | ".join(table["columns"]) + " |")
                lines.append("|" + "---|" * len(table["columns"]))
                for row in rows:
                    lines.append(
                        "| " + " | ".join(f"{v:.6g}" for v in row) + " |")
                lines.append("")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def write(self, out_dir: pathlib.Path) -> Dict[str, pathlib.Path]:
        """Write ``<config>.datasheet.json`` and ``.md`` under ``out_dir``."""
        out_dir = pathlib.Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        json_path = out_dir / f"{self.config_name}.datasheet.json"
        md_path = out_dir / f"{self.config_name}.datasheet.md"
        json_path.write_text(self.to_json())
        md_path.write_text(self.render_markdown() + "\n")
        return {"json": json_path, "markdown": md_path}
