"""The scrape surface: ``/metrics``, ``/metrics.json``, ``/healthz``, ``/readyz``.

A :class:`MetricsServer` is a stdlib ``ThreadingHTTPServer`` on a daemon
thread — no framework, no sockets held after :meth:`close`.  It talks to
the service through a :class:`ServiceProbe`, which is deliberately
duck-typed (anything with ``metrics_snapshot`` / ``alive_worker_count``
works) so this module imports nothing from :mod:`repro.serve`.

Probe semantics (the contract ROADMAP item 1 asks for):

``/healthz``
    Liveness — 200 as long as the serving process is up and the event
    loop has ever started.  A kill-storm that downs every *worker* keeps
    liveness green; the supervisor should not restart the parent because
    its children died.
``/readyz``
    Readiness — 200 only while the service is started, accepting, at
    least one worker is alive (plans compiled — a worker only reports
    ready after its plan is built), and the admission queue is under its
    capacity limit.  503 otherwise, with the failing conditions in the
    JSON body.  During a full-pool outage readiness flips to 503 and
    recovers when the respawn completes.

The HTTP thread reads service state concurrently with the event loop;
every structure it touches is either a frozen snapshot, a defensive copy
(see ``ServiceMetrics.snapshot``), or a single attribute read — all safe
under the GIL.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from .exposition import render_prometheus, snapshot_to_json

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ServiceProbe:
    """Adapter between an ``InferenceService`` and the scrape endpoints."""

    def __init__(self, service) -> None:
        self.service = service

    # -- probe state ----------------------------------------------------
    def healthy(self) -> Tuple[bool, Dict[str, object]]:
        started = bool(getattr(self.service, "_started", False))
        return True, {"status": "ok", "started": started}

    def ready(self) -> Tuple[bool, Dict[str, object]]:
        service = self.service
        started = bool(getattr(service, "_started", False))
        accepting = bool(getattr(service, "_accepting", False))
        alive = int(service.alive_worker_count()) if started else 0
        outstanding = int(getattr(service, "_outstanding", 0))
        capacity = getattr(service.config, "queue_capacity", None)
        under_capacity = capacity is None or outstanding < capacity
        ready = started and accepting and alive > 0 and under_capacity
        return ready, {
            "ready": ready,
            "started": started,
            "accepting": accepting,
            "alive_workers": alive,
            "outstanding": outstanding,
            "queue_capacity": capacity,
            "under_capacity": under_capacity,
        }

    # -- metrics --------------------------------------------------------
    def _live_gauges(self) -> Dict[str, float]:
        service = self.service
        ready, _ = self.ready()
        gauges = {
            "alive_workers": float(service.alive_worker_count()
                                   if getattr(service, "_started", False)
                                   else 0),
            "outstanding_requests": float(getattr(service, "_outstanding", 0)),
            "ready": 1.0 if ready else 0.0,
        }
        counters = getattr(service, "transport_counters", None)
        if callable(counters):
            for key, value in counters().items():
                gauges[f"shm_{key}"] = float(value)
        return gauges

    def metrics_text(self) -> str:
        return render_prometheus(self.service.metrics_snapshot(),
                                 extra_gauges=self._live_gauges())

    def metrics_json(self) -> dict:
        return snapshot_to_json(self.service.metrics_snapshot(),
                                extra_gauges=self._live_gauges())


class _Handler(BaseHTTPRequestHandler):
    probe: ServiceProbe  # set per-server via the factory in MetricsServer

    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                self._respond(200, PROMETHEUS_CONTENT_TYPE,
                              self.probe.metrics_text().encode("utf-8"))
            elif path == "/metrics.json":
                self._respond_json(200, self.probe.metrics_json())
            elif path == "/healthz":
                ok, body = self.probe.healthy()
                self._respond_json(200 if ok else 503, body)
            elif path == "/readyz":
                ok, body = self.probe.ready()
                self._respond_json(200 if ok else 503, body)
            else:
                self._respond_json(404, {"error": f"unknown path {path}",
                                         "paths": ["/metrics", "/metrics.json",
                                                   "/healthz", "/readyz"]})
        except Exception as exc:  # scrape must never take the service down
            self._respond_json(500, {"error": repr(exc)})

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, status: int, document: dict) -> None:
        self._respond(status, "application/json",
                      json.dumps(document).encode("utf-8"))

    def log_message(self, format, *args) -> None:  # noqa: A002
        pass  # scrapes should not spam the serving console


class MetricsServer:
    """A daemon-thread HTTP server exposing one probe's scrape endpoints."""

    def __init__(self, probe: ServiceProbe, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.probe = probe
        handler = type("BoundHandler", (_Handler,), {"probe": probe})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        return self._server.server_address[1]

    def url(self, path: str = "/metrics") -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}{path}"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-obs-http", daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
