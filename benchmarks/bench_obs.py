"""Benchmark: the observability layer's overhead gate.

Tracing exists to be left on in production, so its cost envelope is a
contract, not a hope.  Two acceptance bars:

* **disabled path** (``trace_sample_rate=0``, the default): the per-request
  tracer hooks — one sampling decision plus the ``tracer.enabled`` checks
  on the batch-formed / dispatch / finish paths — must cost at most 2% of a
  request's end-to-end serving time.  The hook cost is measured directly
  (a tight loop over the real calls a request makes when tracing is off)
  and compared against the measured per-request serving latency, because
  an end-to-end A/B of the *same* binary with the *same* flag cannot
  resolve a sub-2% delta above CI runner noise;
* **sampled path** (``trace_sample_rate=0.01``): steady-state serving
  throughput stays within 5% of the disabled configuration — measured
  end-to-end, interleaved best-of-N so runner load drift hits both
  configurations equally.

``BENCH_obs.json`` records the ratios; the CI regression gate diffs
``sampled_throughput_ratio`` and ``disabled_headroom`` against the
committed baseline (which sits exactly at the contract floors, so the
gate and the hard asserts below enforce the same line).

Run with::

    pytest benchmarks/bench_obs.py --benchmark-only -s
"""

import asyncio
import time

import numpy as np
import pytest

from _timing import smoke_mode, write_bench_json
from repro.nn import DatasetConfig, SGD, Sequential, SyntheticImageDataset, Trainer
from repro.nn.layers import Flatten, Linear, ReLU
from repro.obs.trace import Tracer
from repro.serve import InferenceService, ServeConfig

REQUESTS = 96 if smoke_mode() else 256
ROUNDS = 2 if smoke_mode() else 4

#: Tracer touchpoints on a request's hot path while tracing is disabled:
#: the sampling decision in ``submit_nowait`` plus the ``tracer.enabled``
#: early-outs in ``_trace_batch_formed``, ``_batch_primary_trace`` and
#: ``_finish_request_traces``.
DISABLED_HOOKS_PER_REQUEST = 4


@pytest.fixture(scope="module")
def workload():
    """A trained matmul-heavy MLP plus a request stream.

    Same shape rationale as ``bench_serve``: dense layers make batched
    serving cheap per row, which *maximises* the relative weight of any
    per-request bookkeeping — the hardest regime for an overhead gate.
    """
    dataset = SyntheticImageDataset(DatasetConfig(num_classes=8, image_size=12,
                                                  noise_sigma=0.3, seed=17))
    x_train, y_train, x_test, _ = dataset.train_test_split(256, 64)
    model = Sequential(
        Flatten(),
        Linear(432, 512, rng=np.random.default_rng(0)),
        ReLU(),
        Linear(512, 8, rng=np.random.default_rng(1)),
    )
    Trainer(model, SGD(model.parameters(), learning_rate=0.05), batch_size=32).fit(
        x_train, y_train, epochs=1
    )
    requests = np.tile(x_test, (REQUESTS // len(x_test), 1, 1, 1))
    return model, requests


def _serve_once(model, images, config):
    """One full serving run; returns (wall_time_s, traced_request_count)."""

    async def run():
        service = InferenceService(model, config)
        await service.start()
        try:
            await service.submit_many(images)
        finally:
            await service.stop()
        snapshot = service.metrics_snapshot()
        assert snapshot.dropped == 0 and snapshot.samples == len(images)
        return snapshot.wall_time_s, service.tracer.traced_requests

    return asyncio.run(run())


def _disabled_hook_cost_s() -> float:
    """Per-call cost of the tracer's disabled fast path, best of 3 loops."""
    tracer = Tracer(sample_rate=0.0)
    iterations = 50_000
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for index in range(iterations):
            tracer.maybe_start_request(index, "standard", 1)
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


@pytest.mark.benchmark(group="obs")
def test_tracing_overhead_within_contract(benchmark, workload):
    """Disabled tracing <= 2% of per-request time; 1% sampling keeps >= 95%
    of disabled throughput.  Writes ``BENCH_obs.json``."""
    model, requests = workload
    configs = {
        "disabled": ServeConfig(max_batch=8, max_wait_ms=2.0),
        "sampled": ServeConfig(max_batch=8, max_wait_ms=2.0,
                               trace_sample_rate=0.01),
    }

    def measure():
        best = {label: float("inf") for label in configs}
        traced = {label: 0 for label in configs}
        # Interleaved: a load spike on the runner slows whichever config is
        # mid-flight, not systematically one side of the ratio.
        for _ in range(ROUNDS):
            for label, config in configs.items():
                wall, count = _serve_once(model, requests, config)
                best[label] = min(best[label], wall)
                traced[label] = max(traced[label], count)
        return best, traced

    best, traced = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert traced["disabled"] == 0

    sampled_ratio = best["disabled"] / best["sampled"]
    hook_s = _disabled_hook_cost_s()
    # submit_many enqueues max_batch-row slices: that slice count is the
    # request count the per-request overhead budget divides over.
    served_requests = -(-len(requests) // configs["disabled"].max_batch)
    per_request_s = best["disabled"] / served_requests
    overhead_fraction = (DISABLED_HOOKS_PER_REQUEST * hook_s) / per_request_s
    headroom = 0.02 / max(overhead_fraction, 1e-12)

    print()
    print(f"disabled   {served_requests / best['disabled']:8.0f} req/s "
          f"({per_request_s * 1e6:.0f} us/request)")
    print(f"sampled 1% {served_requests / best['sampled']:8.0f} req/s "
          f"({traced['sampled']} traced), "
          f"throughput ratio {sampled_ratio:.3f}")
    print(f"disabled hook {hook_s * 1e9:.0f} ns/call x "
          f"{DISABLED_HOOKS_PER_REQUEST}/request = "
          f"{overhead_fraction * 100:.4f}% of request time "
          f"(budget 2%, headroom {headroom:.0f}x)")

    path = write_bench_json("obs", {
        "requests": REQUESTS,
        "served_requests": served_requests,
        "disabled_wall_s": best["disabled"],
        "sampled_wall_s": best["sampled"],
        "sampled_traced_requests": traced["sampled"],
        "sampled_throughput_ratio": sampled_ratio,
        "disabled_hook_ns": hook_s * 1e9,
        "disabled_overhead_fraction": overhead_fraction,
        "disabled_headroom": headroom,
    })
    print(f"Trajectory written to {path}")

    assert overhead_fraction <= 0.02, (
        f"disabled tracer hooks cost {overhead_fraction * 100:.2f}% of a "
        f"request (budget 2%)")
    assert sampled_ratio >= 0.95, (
        f"1% sampling kept only {sampled_ratio * 100:.1f}% of disabled "
        f"throughput (contract: >= 95%)")
