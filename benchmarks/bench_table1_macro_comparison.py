"""Benchmark: Table I — CIM macro comparison and headline ratios.

Rebuilds the AFPR-CIM rows from the reproduction's power model, keeps the
published reference rows, and recomputes the paper's four headline ratios
(4.135x / 5.376x / 2.841x energy efficiency, 5.382x throughput).
"""

import pytest

from repro.analysis.table1 import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_macro_comparison(benchmark):
    result = benchmark(run_table1)
    print("\n" + result.render())

    # The reproduced AFPR-CIM E2M5 row matches the paper's own numbers.
    assert result.e2m5.latency_us == pytest.approx(0.2)
    assert result.e2m5.throughput_gops == pytest.approx(1474.56)
    assert result.e2m5.energy_efficiency_tops_per_watt == pytest.approx(19.89, rel=0.02)

    # The four headline ratios against the published baselines reproduce.
    for key, claimed in result.claimed_ratios.items():
        assert result.measured_ratios[key] == pytest.approx(claimed, rel=0.02), key

    # The analytically modelled baselines land in the same ballpark, so the
    # ratios hold even without quoting the published numbers.
    for key, claimed in result.claimed_ratios.items():
        assert result.modelled_ratios[key] == pytest.approx(claimed, rel=0.25), key
