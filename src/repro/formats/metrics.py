"""Quantisation-error metrics.

Small helpers used by the accuracy experiments (Fig. 6(c)) and by tests to
quantify how well a quantised tensor approximates its full-precision
reference.  All functions accept arbitrary-shape numpy arrays and return
floats.
"""

from __future__ import annotations

import numpy as np


def quantization_mse(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Mean squared error between the reference and quantised tensors."""
    reference = np.asarray(reference, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    if reference.shape != quantized.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {quantized.shape}"
        )
    return float(np.mean((reference - quantized) ** 2))


def quantization_sqnr_db(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Signal-to-quantisation-noise ratio in dB (higher is better).

    Returns ``inf`` for a perfect match and ``-inf`` for a zero-power signal
    with non-zero error.
    """
    reference = np.asarray(reference, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    signal = float(np.mean(reference ** 2))
    noise = quantization_mse(reference, quantized)
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        return float("-inf")
    return 10.0 * float(np.log10(signal / noise))


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two flattened tensors (1.0 = identical direction)."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    na = float(np.linalg.norm(a))
    nb = float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 1.0 if na == nb else 0.0
    return float(np.dot(a, b) / (na * nb))


def max_abs_error(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Worst-case absolute error."""
    reference = np.asarray(reference, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    if reference.size == 0:
        return 0.0
    return float(np.max(np.abs(reference - quantized)))


def relative_error(reference: np.ndarray, quantized: np.ndarray, eps: float = 1e-12) -> float:
    """Mean relative error ``|ref - q| / (|ref| + eps)``."""
    reference = np.asarray(reference, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    return float(np.mean(np.abs(reference - quantized) / (np.abs(reference) + eps)))
